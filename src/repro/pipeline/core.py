"""The cycle-level simulator.

Trace-driven timing model: the committed trace (from the functional
simulator) is replayed through fetch -> instruction queue -> in-order issue
-> commit. Mispredicted branches put fetch into wrong-path mode, where real
instructions are fetched from the static program at the bogus target (the
paper does the same in Asim, noting that wrong-path memory addresses are
unknown — wrong-path loads are therefore timed as L0 hits and do not touch
the cache).

The exposure-reduction mechanisms of Section 3 are implemented here:

* **Squash**: when a load misses in the trigger level, every not-yet-issued
  (i.e. younger) instruction is removed from the queue; fetch rewinds to
  the oldest victim and, by default, resumes so refetched instructions
  arrive as the miss data returns ("bring them back when the pipeline
  resumes execution").
* **Throttle**: fetch simply stalls until the miss returns.

Strict in-order issue (stall-at-first-not-ready) matches the paper's
observation that instructions behind a missing load cannot make progress in
an in-order machine — which is precisely why squashing is nearly free.
"""

from __future__ import annotations

import gc
from collections import OrderedDict
from contextlib import contextmanager
from typing import List, Optional

from repro.arch.trace import CommittedOp
from repro.isa.instruction import Instruction
from repro.isa.opcodes import InstrClass, Opcode
from repro.isa.program import Program
from repro.memory.hierarchy import CacheHierarchy
from repro.pipeline.branch import GShareBranchPredictor
from repro.pipeline.config import (
    IssuePolicy,
    MachineConfig,
    SquashAction,
    Trigger,
)
from repro.pipeline.iq import OccupancyInterval, OccupantKind
from repro.pipeline.result import PipelineResult
from repro.util.rng import DeterministicRng, derive_seed

#: Warmed-hierarchy snapshots, keyed by everything the warm state depends
#: on. Re-simulating the same program slice (same trace, same geometry,
#: same warm-up tail) restores the snapshot instead of replaying every
#: memory reference through the LRU stacks again — the dominant cost of
#: exhibit sweeps, which run 3-4 triggers over one trace. Entries carry
#: the exact address stream so a (vanishingly unlikely) hash collision
#: degrades to a recompute, never to wrong state. Process-local: worker
#: processes each grow their own. Bounded LRU: a hit refreshes the entry,
#: inserting past the cap evicts the least-recently-used one (long
#: multi-workload campaigns previously grew this without limit).
_WARM_SNAPSHOTS: "OrderedDict" = OrderedDict()
_WARM_SNAPSHOT_LIMIT = 16
#: Module-level counters (surfaced via telemetry in ``--verbose`` runs).
warm_snapshot_hits = 0
warm_snapshot_misses = 0
warm_snapshot_evictions = 0


def clear_warm_snapshots() -> None:
    """Drop all cached warm-hierarchy snapshots (tests/benchmarks)."""
    _WARM_SNAPSHOTS.clear()


@contextmanager
def _gc_paused():
    """Pause generational garbage collection for the simulation.

    Both timing kernels allocate millions of short-lived objects (IQ
    entries, interval tuples) but never create reference cycles, so
    collections during a run free nothing — and once the functional/run
    memos hold a whole suite's traces, every gen-2 pass traverses that
    entire long-lived heap, slowing the hot loop 2x+. Refcounting still
    reclaims all simulation garbage promptly; cycle collection merely
    waits until the run returns.
    """
    if gc.isenabled():
        gc.disable()
        try:
            yield
        finally:
            gc.enable()
    else:
        yield


class _Entry:
    """A live IQ slot occupant."""

    __slots__ = ("seq", "instruction", "op", "wrong_path", "alloc_cycle",
                 "issue_cycle", "mispredicted")

    def __init__(self, seq: Optional[int], instruction: Instruction,
                 op: Optional[CommittedOp], wrong_path: bool,
                 alloc_cycle: int) -> None:
        self.seq = seq
        self.instruction = instruction
        self.op = op
        self.wrong_path = wrong_path
        self.alloc_cycle = alloc_cycle
        self.issue_cycle: Optional[int] = None
        self.mispredicted = False


class PipelineSimulator:
    """Replays one committed trace through the timing model."""

    def __init__(
        self,
        program: Program,
        trace: List[CommittedOp],
        config: Optional[MachineConfig] = None,
        seed: int = 2004,
    ) -> None:
        if not trace:
            raise ValueError("cannot simulate an empty trace")
        self.program = program
        self.trace = trace
        self.config = config or MachineConfig()
        self.hierarchy = CacheHierarchy(self.config.hierarchy)
        self.predictor = GShareBranchPredictor()
        self._rng = DeterministicRng(derive_seed(seed, "pipeline", program.name))

    # -- public ---------------------------------------------------------------

    def _warm_caches(self) -> None:
        """SimPoint-style warm start.

        The paper measures 100M-instruction slices of long-running
        programs, so at cycle 0 every cache already holds its steady state.
        We reconstruct that state in two passes:

        * the **L2** sees the whole trace — it models the long-run history
          that the skipped SimPoint prefix would have accumulated;
        * the **L0/L1** see only the trace's *tail* (a few thousand
          accesses): that is exactly the recent-reference state a long run
          leaves behind. Frequently revisited (hot/warm) lines are resident
          at cycle 0 — killing cold-start compulsory-miss artifacts — while
          streaming (cold) lines from the distant past have been evicted,
          preserving the L1 misses the squash technique triggers on.
        """
        global warm_snapshot_hits, warm_snapshot_misses
        global warm_snapshot_evictions
        # Local import: the runtime context package must stay importable
        # without the pipeline (workers tick their own telemetry, which
        # the engine merges into the parent's).
        from repro.runtime.context import get_runtime

        telemetry = get_runtime().telemetry
        addresses = tuple(op.mem_addr for op in self.trace
                          if op.mem_addr is not None)
        # The tail must remain a small suffix of the trace: replaying all
        # of a short trace would park its entire footprint in the L0/L1.
        tail = min(self.config.warmup_tail_accesses, len(addresses) // 4)
        key = (self.program.name, self.config.hierarchy, tail,
               len(addresses), hash(addresses))
        cached = _WARM_SNAPSHOTS.get(key)
        if cached is not None and cached[0] == addresses:
            warm_snapshot_hits += 1
            telemetry.increment("warm_hierarchy_hits")
            _WARM_SNAPSHOTS.move_to_end(key)
            self.hierarchy.restore(cached[1])
            self.hierarchy.reset_stats()
            return
        warm_snapshot_misses += 1
        telemetry.increment("warm_hierarchy_misses")
        l2_access = self.hierarchy.l2.access
        for address in addresses:
            l2_access(address)
        access = self.hierarchy.access
        if tail:
            for address in addresses[-tail:]:
                access(address)
        self.hierarchy.reset_stats()
        while len(_WARM_SNAPSHOTS) >= _WARM_SNAPSHOT_LIMIT:
            _WARM_SNAPSHOTS.popitem(last=False)
            warm_snapshot_evictions += 1
            telemetry.increment("warm_snapshot_evictions")
        _WARM_SNAPSHOTS[key] = (addresses, self.hierarchy.snapshot())

    def run(self) -> PipelineResult:
        """Run the timing simulation through the active kernel.

        The interval-compressed kernel (:mod:`repro.pipeline.kernel`) is
        the default; it is bit-identical to :meth:`run_per_cycle` — same
        cycle counts, intervals, stats, and RNG stream — just faster.
        With ``chunk_memo`` on (the default) the kernel additionally
        memoizes basic-block chunk deltas and replays them on repeat
        visits (:mod:`repro.pipeline.compose`), still bit-identical.
        ``--no-chunk-memo`` selects the plain interval kernel;
        ``--no-interval-kernel`` (RuntimeContext.interval_kernel=False)
        selects the legacy per-cycle loop.
        """
        from repro.runtime.context import get_runtime

        runtime = get_runtime()
        with _gc_paused():
            if runtime.interval_kernel:
                if runtime.chunk_memo:
                    from repro.pipeline.compose import run_composed

                    return run_composed(self)
                from repro.pipeline.kernel import run_interval

                return run_interval(self)
            return self.run_per_cycle()

    def run_per_cycle(self) -> PipelineResult:
        cfg = self.config
        if cfg.warm_caches:
            self._warm_caches()
        trace = self.trace
        program = self.program
        hierarchy = self.hierarchy
        predictor = self.predictor
        trigger = cfg.squash.trigger
        squash_action = cfg.squash.action

        # The IQ: a grow-only list with a head index. Commit advances
        # ``head`` instead of ``pop(0)``-ing (which is O(queue length)
        # per commit, O(n^2) per run); the dead prefix is compacted at the
        # rare queue-rebuild points (redirects, squashes) and whenever it
        # outgrows the live suffix. Entries at index < head are gone.
        queue: List[_Entry] = []
        head = 0
        intervals: List[OccupancyInterval] = []
        gpr_ready = {}
        pred_ready = {}

        trace_ptr = 0
        wrong_path_mode = False
        wrong_pc = 0
        pending_redirect: Optional[tuple] = None  # (fire_cycle, entry)
        # (fire_cycle, miss_return_cycle, triggering load entry)
        pending_squashes: List[tuple] = []
        fetch_resume = 0
        throttle_until = 0
        cycle = 0

        stats = {
            "l0_misses": 0, "l1_misses": 0, "l2_misses": 0, "loads": 0,
            "squash_events": 0, "squashed_instructions": 0,
            "wrong_path_fetched": 0, "fetch_bubbles": 0,
            "throttle_cycles": 0, "redirects": 0,
        }

        bubble_prob = cfg.fetch_bubble_prob
        bubble_len = cfg.fetch_bubble_mean_len
        mispredicted_entry: Optional[_Entry] = None

        def close(entry: _Entry, kind: OccupantKind, dealloc: int) -> None:
            intervals.append(OccupancyInterval(
                entry.seq, entry.instruction, kind,
                entry.alloc_cycle, entry.issue_cycle, dealloc))

        while cycle < cfg.max_cycles:
            # ---- branch-resolution redirect --------------------------------
            if pending_redirect is not None and pending_redirect[0] <= cycle:
                kept = []
                for entry in queue[head:] if head else queue:
                    if entry.wrong_path:
                        close(entry, OccupantKind.WRONG_PATH, cycle)
                    else:
                        kept.append(entry)
                queue = kept
                head = 0
                wrong_path_mode = False
                pending_redirect = None
                mispredicted_entry = None
                fetch_resume = max(fetch_resume, cycle + cfg.frontend_depth)
                stats["redirects"] += 1

            # ---- exposure-reduction trigger fires --------------------------
            # Guard: with no trigger configured (or between misses) this
            # runs every cycle, so don't rebuild two lists to learn that
            # nothing fired.
            fired = ([s for s in pending_squashes if s[0] <= cycle]
                     if pending_squashes else None)
            if fired:
                pending_squashes = [s for s in pending_squashes if s[0] > cycle]
                if head:
                    del queue[:head]
                    head = 0
                miss_return = max(s[1] for s in fired)
                if squash_action is SquashAction.THROTTLE:
                    throttle_until = max(throttle_until, miss_return)
                else:
                    # Victims: not-yet-issued entries younger than the
                    # triggering load. With in-order issue that is exactly
                    # the non-issued suffix; with windowed OoO issue some
                    # younger entries may already have issued and are left
                    # alone. If the load has already deallocated, every
                    # remaining entry is younger (commit is in order).
                    load_entries = {s[2] for s in fired}
                    boundary = -1
                    for position, entry in enumerate(queue):
                        if entry in load_entries:
                            # Oldest triggering load wins: simultaneous
                            # triggers squash the union of their victims.
                            boundary = position
                            break
                    victims = [entry for entry in queue[boundary + 1:]
                               if entry.issue_cycle is None]
                    if victims:
                        victim_set = set(map(id, victims))
                        queue = [entry for entry in queue
                                 if id(entry) not in victim_set]
                        stats["squash_events"] += 1
                        stats["squashed_instructions"] += len(victims)
                        rewind_to = None
                        victim_has_branch = False
                        for entry in victims:
                            if entry.wrong_path:
                                close(entry, OccupantKind.WRONG_PATH, cycle)
                            else:
                                close(entry, OccupantKind.SQUASHED, cycle)
                                if rewind_to is None or entry.seq < rewind_to:
                                    rewind_to = entry.seq
                                if entry is mispredicted_entry:
                                    victim_has_branch = True
                        if rewind_to is not None:
                            trace_ptr = min(trace_ptr, rewind_to)
                        if victim_has_branch:
                            # The mispredicted branch itself was squashed:
                            # its wrong path evaporates with it. Under
                            # windowed OoO issue some wrong-path entries may
                            # already have issued and survived the victim
                            # cut; with the redirect cancelled nothing else
                            # would ever remove them, and a wrong-path entry
                            # at the queue head blocks commit forever (the
                            # mcf-181 OOO+L0 deadlock). Flush them like a
                            # redirect would.
                            wrong_path_mode = False
                            pending_redirect = None
                            mispredicted_entry = None
                            if any(entry.wrong_path for entry in queue):
                                kept = []
                                for entry in queue:
                                    if entry.wrong_path:
                                        close(entry, OccupantKind.WRONG_PATH,
                                              cycle)
                                    else:
                                        kept.append(entry)
                                queue = kept
                    if cfg.squash.resume_at_miss_return:
                        fetch_resume = max(
                            fetch_resume, cycle + 1,
                            miss_return - cfg.frontend_depth)
                    else:
                        fetch_resume = max(fetch_resume,
                                           cycle + cfg.frontend_depth)

            # ---- commit (deallocate in order) ------------------------------
            committed_now = 0
            queue_len = len(queue)
            while (head < queue_len and committed_now < cfg.commit_width
                   and not queue[head].wrong_path
                   and queue[head].issue_cycle is not None
                   and queue[head].issue_cycle + cfg.commit_latency <= cycle):
                close(queue[head], OccupantKind.COMMITTED, cycle)
                head += 1
                committed_now += 1
            if head >= 512 and head * 2 >= queue_len:
                del queue[:head]
                head = 0

            # ---- issue ------------------------------------------------------
            # IN_ORDER: a not-ready instruction blocks everything younger.
            # OOO_WINDOW: any ready instruction among the oldest
            # scheduler_window non-committed entries may issue.
            mem_slots = cfg.mem_ports
            mul_slots = cfg.mul_units
            branch_slots = cfg.branch_units
            issued_now = 0
            in_order = cfg.issue_policy is IssuePolicy.IN_ORDER
            scan_limit = len(queue) if in_order else \
                min(len(queue), head + cfg.scheduler_window)
            position = head
            while issued_now < cfg.issue_width and position < scan_limit:
                entry = queue[position]
                position += 1
                if entry.issue_cycle is not None:
                    continue
                instruction = entry.instruction
                klass = instruction.instr_class
                # Functional-unit availability (blocking under in-order).
                if klass in (InstrClass.LOAD, InstrClass.STORE):
                    if mem_slots == 0:
                        if in_order:
                            break
                        continue
                elif klass is InstrClass.MUL:
                    if mul_slots == 0:
                        if in_order:
                            break
                        continue
                elif klass in (InstrClass.BRANCH, InstrClass.CALL,
                               InstrClass.RET):
                    if branch_slots == 0:
                        if in_order:
                            break
                        continue
                # Operand readiness (qp + register sources).
                blocked = pred_ready.get(instruction.qp, -1) > cycle
                if not blocked:
                    for reg in instruction.source_gprs():
                        if gpr_ready.get(reg, -1) > cycle:
                            blocked = True
                            break
                if blocked:
                    if in_order:
                        break
                    continue

                # Issue.
                entry.issue_cycle = cycle
                issued_now += 1
                op = entry.op
                if klass is InstrClass.LOAD:
                    mem_slots -= 1
                    if entry.wrong_path or op is None or op.mem_addr is None:
                        latency = cfg.hierarchy.l0_latency
                    else:
                        stats["loads"] += 1
                        access = hierarchy.access(op.mem_addr)
                        latency = access.latency
                        if access.l0_miss:
                            stats["l0_misses"] += 1
                        if access.l1_miss:
                            stats["l1_misses"] += 1
                        if access.l2_miss:
                            stats["l2_misses"] += 1
                        if trigger is Trigger.L0_MISS and access.l0_miss:
                            pending_squashes.append(
                                (cycle + cfg.hierarchy.l0_latency,
                                 cycle + latency, entry))
                        elif trigger is Trigger.L1_MISS and access.l1_miss:
                            pending_squashes.append(
                                (cycle + cfg.hierarchy.l1_latency,
                                 cycle + latency, entry))
                    if instruction.dest_gpr and (op is None or op.executed):
                        gpr_ready[instruction.dest_gpr] = cycle + latency
                elif klass is InstrClass.STORE:
                    mem_slots -= 1
                    if not entry.wrong_path and op is not None \
                            and op.mem_addr is not None:
                        hierarchy.access(op.mem_addr)
                elif klass is InstrClass.MUL:
                    mul_slots -= 1
                    if instruction.dest_gpr and (op is None or op.executed):
                        gpr_ready[instruction.dest_gpr] = \
                            cycle + cfg.mul_latency
                elif klass is InstrClass.COMPARE:
                    if op is None or op.executed:
                        pred_ready[instruction.dest_predicate] = \
                            cycle + cfg.compare_latency
                elif klass in (InstrClass.BRANCH, InstrClass.CALL,
                               InstrClass.RET):
                    branch_slots -= 1
                    if entry.mispredicted:
                        pending_redirect = (
                            cycle + cfg.branch_resolve_latency, entry)
                else:
                    # ALU / MOVI / OUT / neutral.
                    if instruction.dest_gpr and (op is None or op.executed):
                        gpr_ready[instruction.dest_gpr] = \
                            cycle + cfg.alu_latency

            # ---- fetch ------------------------------------------------------
            if cycle >= fetch_resume and cycle >= throttle_until:
                if bubble_prob and self._rng.bernoulli(bubble_prob):
                    stats["fetch_bubbles"] += 1
                    fetch_resume = cycle + 1 + self._rng.geometric(
                        1.0 / bubble_len, maximum=20)
                else:
                    fetched = 0
                    while fetched < cfg.fetch_width \
                            and len(queue) - head < cfg.iq_entries:
                        if wrong_path_mode:
                            instruction = program.fetch(wrong_pc)
                            wrong_pc += 1
                            queue.append(_Entry(None, instruction, None,
                                                True, cycle))
                            stats["wrong_path_fetched"] += 1
                            fetched += 1
                            continue
                        if trace_ptr >= len(trace):
                            break
                        op = trace[trace_ptr]
                        instruction = op.instruction
                        entry = _Entry(op.seq, instruction, op, False, cycle)
                        if instruction.opcode is Opcode.BR:
                            prediction = predictor.update(
                                op.pc, op.branch_taken)
                            if prediction != op.branch_taken:
                                entry.mispredicted = True
                                mispredicted_entry = entry
                                wrong_path_mode = True
                                wrong_pc = (op.pc + 1 if op.branch_taken
                                            else op.pc + instruction.imm)
                                queue.append(entry)
                                trace_ptr += 1
                                fetched += 1
                                break  # redirect ends the fetch group
                        queue.append(entry)
                        trace_ptr += 1
                        fetched += 1
            elif cycle < throttle_until:
                stats["throttle_cycles"] += 1

            # ---- termination ------------------------------------------------
            if trace_ptr >= len(trace) and head >= len(queue) \
                    and not wrong_path_mode:
                break
            cycle += 1
        else:
            raise RuntimeError(
                f"timing simulation exceeded {cfg.max_cycles} cycles "
                f"({self.program.name})")

        stats["branch_predictions"] = predictor.predictions
        stats["branch_mispredictions"] = predictor.mispredictions
        return PipelineResult(
            cycles=cycle,
            committed=len(trace),
            intervals=intervals,
            iq_entries=cfg.iq_entries,
            stats=stats,
        )


def simulate(
    program: Program,
    trace: List[CommittedOp],
    config: Optional[MachineConfig] = None,
    seed: int = 2004,
) -> PipelineResult:
    """Convenience wrapper: run one timing simulation."""
    return PipelineSimulator(program, trace, config, seed).run()
