"""The interval-compressed timing kernel.

A drop-in replacement for the per-cycle loop in
:meth:`repro.pipeline.core.PipelineSimulator.run_per_cycle`, proven
bit-identical to it (``tests/test_interval_kernel.py`` runs both paths
over every benchmark profile x squash trigger and compares everything).
It wins on two axes:

* **Cycle skipping.** When the machine is provably quiescent — every
  in-flight instruction waiting on a known-latency event (a miss shadow,
  a drain after a squash, a fetch gate) — the loop fast-forwards
  ``cycle`` to the next scheduled event instead of ticking once per
  cycle. The event set is: the pending branch redirect, the earliest
  pending exposure squash, the head entry's commit cycle, the earliest
  cycle any scannable entry's operands become ready, and the fetch-gate
  release. Each candidate is clamped to ``cycle + 1`` so time never runs
  backwards (the head's commit event can lie in the past when more than
  ``commit_width`` entries have piled up behind it).

  The one thing a skip must never disturb is the RNG stream: the
  per-cycle loop draws one ``bernoulli(fetch_bubble_prob)`` on exactly
  the cycles where fetch is un-gated. A span is therefore only skipped
  outright when fetch is gated (or there is nothing to fetch *and* no
  bubble probability); spans where fetch is un-gated but cannot make
  progress (queue full, trace drained) replay the draws through a tight
  draw-only loop that touches nothing else.

* **A cheaper per-cycle body.** The trace is pre-decoded once into flat
  rows (class code, operand registers, memory address, ...), IQ entries
  are plain lists copied from per-row templates, and the interval log is
  a flat list of tuples that becomes an
  :class:`~repro.pipeline.iq.IntervalTimeline` — no
  ``OccupancyInterval`` objects are built unless a consumer asks.

Bulk accounting over a skipped span: the only per-cycle statistic is
``throttle_cycles`` (counted on every cycle below ``throttle_until``),
which a skip adds in closed form.
"""

from __future__ import annotations

from typing import List

from repro.isa.opcodes import InstrClass, Opcode
from repro.pipeline.config import IssuePolicy, SquashAction, Trigger
from repro.pipeline.iq import (
    KIND_COMMITTED,
    KIND_SQUASHED,
    KIND_WRONG_PATH,
    IntervalTimeline,
)
from repro.pipeline.result import PipelineResult

#: Functional-unit class codes (LOAD/STORE share the memory ports).
K_LOAD, K_STORE, K_MUL, K_COMPARE, K_BRANCH, K_OTHER = range(6)
_KMAP = {
    InstrClass.LOAD: K_LOAD, InstrClass.STORE: K_STORE,
    InstrClass.MUL: K_MUL, InstrClass.COMPARE: K_COMPARE,
    InstrClass.BRANCH: K_BRANCH, InstrClass.CALL: K_BRANCH,
    InstrClass.RET: K_BRANCH,
}

#: IQ-entry slots (plain lists beat attribute access in the hot loop).
(E_SEQ, E_KLASS, E_SRC, E_DEST, E_QP, E_WRONG, E_ALLOC, E_ISSUE, E_MISPRED,
 E_ADDR, E_EXEC, E_INSTR, E_DPRED) = range(13)

_INF = float("inf")


def _decode(instruction):
    """The per-instruction facts the hot loop needs, computed once."""
    return (_KMAP.get(instruction.instr_class, K_OTHER),
            instruction.source_gprs(), instruction.dest_gpr,
            instruction.qp, instruction.dest_predicate)


def run_interval(sim) -> PipelineResult:
    """Run ``sim`` (a PipelineSimulator) through the interval kernel."""
    cfg = sim.config
    if cfg.warm_caches:
        sim._warm_caches()
    trace = sim.trace
    program = sim.program
    predictor = sim.predictor
    squash_action = cfg.squash.action
    throttle_action = squash_action is SquashAction.THROTTLE
    trigger = cfg.squash.trigger
    trig_l0 = trigger is Trigger.L0_MISS
    trig_l1 = trigger is Trigger.L1_MISS

    # ---- pre-decode the trace into entry templates -----------------------
    # One template list per trace index; fetch copies it and stamps the
    # allocation cycle. A squash rewind refetches through the same
    # template, producing a fresh entry exactly like the per-cycle loop.
    # ``executed`` folds the baseline's ``op is None or op.executed``
    # (wrong-path entries behave as executed producers).
    trace_n = len(trace)
    decode_cache: dict = {}
    templates: List[list] = []
    t_br: List[bool] = []       # opcode is BR
    t_pc: List[int] = []
    t_taken: List[bool] = []
    t_imm: List[int] = []
    for op in trace:
        instruction = op.instruction
        d = decode_cache.get(id(instruction))
        if d is None:
            d = _decode(instruction)
            decode_cache[id(instruction)] = d
        templates.append([op.seq, d[0], d[1], d[2], d[3], False, 0, None,
                          False, op.mem_addr, op.executed, instruction,
                          d[4]])
        t_br.append(instruction.opcode is Opcode.BR)
        t_pc.append(op.pc)
        t_taken.append(op.branch_taken)
        t_imm.append(instruction.imm)
    #: Wrong-path fetch decodes the static program lazily, once per pc.
    static_templates: dict = {}

    queue: List[list] = []
    head = 0
    #: Flat interval log: (seq, kind, alloc, issue, dealloc, instruction)
    #: with -1 for "no seq" / "never issued" (see IntervalTimeline).
    log: List[tuple] = []
    log_append = log.append

    gpr_ready: dict = {}
    pred_ready: dict = {}
    gready = gpr_ready.get
    pready = pred_ready.get

    trace_ptr = 0
    wrong_path_mode = False
    wrong_pc = 0
    pending_redirect = None  # (fire_cycle, entry)
    # (fire_cycle, miss_return_cycle, triggering load entry)
    pending_squashes: List[tuple] = []
    fetch_resume = 0
    throttle_until = 0
    cycle = 0

    stats = {
        "l0_misses": 0, "l1_misses": 0, "l2_misses": 0, "loads": 0,
        "squash_events": 0, "squashed_instructions": 0,
        "wrong_path_fetched": 0, "fetch_bubbles": 0,
        "throttle_cycles": 0, "redirects": 0,
    }

    bubble_prob = cfg.fetch_bubble_prob
    bubble_len = cfg.fetch_bubble_mean_len
    mispredicted_entry = None
    # The bernoulli stream, inlined: bernoulli(p) is random() < p.
    rng_random = sim._rng._random.random
    geometric = sim._rng.geometric
    max_cycles = cfg.max_cycles
    commit_width = cfg.commit_width
    commit_latency = cfg.commit_latency
    issue_width = cfg.issue_width
    iq_entries = cfg.iq_entries
    fetch_width = cfg.fetch_width
    in_order = cfg.issue_policy is IssuePolicy.IN_ORDER
    scheduler_window = cfg.scheduler_window
    frontend_depth = cfg.frontend_depth
    l0_latency = cfg.hierarchy.l0_latency
    l1_latency = cfg.hierarchy.l1_latency
    alu_latency = cfg.alu_latency
    mul_latency = cfg.mul_latency
    compare_latency = cfg.compare_latency
    branch_resolve_latency = cfg.branch_resolve_latency
    resume_at_miss_return = cfg.squash.resume_at_miss_return
    access_fn = sim.hierarchy.access
    cfg_mem_ports = cfg.mem_ports
    cfg_mul_units = cfg.mul_units
    cfg_branch_units = cfg.branch_units
    #: Unit count per class code, for the issue-event scan (a class with
    #: zero units can never issue, so it contributes no event).
    units_for = (cfg_mem_ports, cfg_mem_ports, cfg_mul_units, _INF,
                 cfg_branch_units, _INF)
    l0_miss_total = l1_miss_total = l2_miss_total = 0
    loads_total = 0
    bubbles_total = 0

    while cycle < max_cycles:
        # ---- branch-resolution redirect ----------------------------------
        if pending_redirect is not None and pending_redirect[0] <= cycle:
            kept = []
            for entry in queue[head:] if head else queue:
                if entry[E_WRONG]:
                    ic = entry[E_ISSUE]
                    log_append((-1, KIND_WRONG_PATH, entry[E_ALLOC],
                                -1 if ic is None else ic, cycle,
                                entry[E_INSTR]))
                else:
                    kept.append(entry)
            queue = kept
            head = 0
            wrong_path_mode = False
            pending_redirect = None
            mispredicted_entry = None
            if fetch_resume < cycle + frontend_depth:
                fetch_resume = cycle + frontend_depth
            stats["redirects"] += 1

        # ---- exposure-reduction trigger fires ----------------------------
        fired = ([s for s in pending_squashes if s[0] <= cycle]
                 if pending_squashes else None)
        if fired:
            pending_squashes = [s for s in pending_squashes if s[0] > cycle]
            if head:
                del queue[:head]
                head = 0
            miss_return = max(s[1] for s in fired)
            if throttle_action:
                if throttle_until < miss_return:
                    throttle_until = miss_return
            else:
                # Victims: not-yet-issued entries younger than the oldest
                # triggering load (see the per-cycle loop for the policy
                # discussion; the logic here is identical).
                load_ids = {id(s[2]) for s in fired}
                boundary = -1
                for position, entry in enumerate(queue):
                    if id(entry) in load_ids:
                        boundary = position
                        break
                victims = [entry for entry in queue[boundary + 1:]
                           if entry[E_ISSUE] is None]
                if victims:
                    victim_set = set(map(id, victims))
                    queue = [entry for entry in queue
                             if id(entry) not in victim_set]
                    stats["squash_events"] += 1
                    stats["squashed_instructions"] += len(victims)
                    rewind_to = None
                    victim_has_branch = False
                    for entry in victims:
                        if entry[E_WRONG]:
                            log_append((-1, KIND_WRONG_PATH, entry[E_ALLOC],
                                        -1, cycle, entry[E_INSTR]))
                        else:
                            seq = entry[E_SEQ]
                            log_append((seq, KIND_SQUASHED, entry[E_ALLOC],
                                        -1, cycle, entry[E_INSTR]))
                            if rewind_to is None or seq < rewind_to:
                                rewind_to = seq
                            if entry is mispredicted_entry:
                                victim_has_branch = True
                    if rewind_to is not None and trace_ptr > rewind_to:
                        trace_ptr = rewind_to
                    if victim_has_branch:
                        # The mispredicted branch itself was squashed: its
                        # wrong path evaporates with it. Under windowed OoO
                        # issue some wrong-path entries may already have
                        # issued and survived the victim cut; with the
                        # redirect cancelled nothing else would ever remove
                        # them, and a wrong-path entry at the queue head
                        # blocks commit forever (the mcf-181 OOO+L0
                        # deadlock). Flush them like a redirect would.
                        wrong_path_mode = False
                        pending_redirect = None
                        mispredicted_entry = None
                        if any(entry[E_WRONG] for entry in queue):
                            kept = []
                            for entry in queue:
                                if entry[E_WRONG]:
                                    ic = entry[E_ISSUE]
                                    log_append((-1, KIND_WRONG_PATH,
                                                entry[E_ALLOC],
                                                -1 if ic is None else ic,
                                                cycle, entry[E_INSTR]))
                                else:
                                    kept.append(entry)
                            queue = kept
                if resume_at_miss_return:
                    fetch_resume = max(fetch_resume, cycle + 1,
                                       miss_return - frontend_depth)
                else:
                    fetch_resume = max(fetch_resume, cycle + frontend_depth)

        # ---- commit (deallocate in order) --------------------------------
        committed_now = 0
        queue_len = len(queue)
        while committed_now < commit_width and head < queue_len:
            entry = queue[head]
            if entry[E_WRONG]:
                break
            ic = entry[E_ISSUE]
            if ic is None or ic + commit_latency > cycle:
                break
            log_append((entry[E_SEQ], KIND_COMMITTED, entry[E_ALLOC], ic,
                        cycle, entry[E_INSTR]))
            head += 1
            committed_now += 1
        if head >= 512 and head * 2 >= queue_len:
            del queue[:head]
            head = 0

        # ---- issue --------------------------------------------------------
        mem_slots = cfg_mem_ports
        mul_slots = cfg_mul_units
        branch_slots = cfg_branch_units
        issued_now = 0
        scan_limit = len(queue) if in_order else \
            min(len(queue), head + scheduler_window)
        position = head
        while issued_now < issue_width and position < scan_limit:
            entry = queue[position]
            position += 1
            if entry[E_ISSUE] is not None:
                continue
            klass = entry[E_KLASS]
            if klass <= K_STORE:
                if mem_slots == 0:
                    if in_order:
                        break
                    continue
            elif klass == K_MUL:
                if mul_slots == 0:
                    if in_order:
                        break
                    continue
            elif klass == K_BRANCH:
                if branch_slots == 0:
                    if in_order:
                        break
                    continue
            blocked = pready(entry[E_QP], -1) > cycle
            if not blocked:
                for reg in entry[E_SRC]:
                    if gready(reg, -1) > cycle:
                        blocked = True
                        break
            if blocked:
                if in_order:
                    break
                continue

            entry[E_ISSUE] = cycle
            issued_now += 1
            if klass == K_LOAD:
                mem_slots -= 1
                addr = entry[E_ADDR]
                if entry[E_WRONG] or addr is None:
                    latency = l0_latency
                else:
                    loads_total += 1
                    access = access_fn(addr)
                    latency = access.latency
                    if access.l0_miss:
                        l0_miss_total += 1
                        if access.l1_miss:
                            l1_miss_total += 1
                            if access.l2_miss:
                                l2_miss_total += 1
                        if trig_l0:
                            pending_squashes.append(
                                (cycle + l0_latency, cycle + latency, entry))
                        elif trig_l1 and access.l1_miss:
                            pending_squashes.append(
                                (cycle + l1_latency, cycle + latency, entry))
                dest = entry[E_DEST]
                if dest and entry[E_EXEC]:
                    gpr_ready[dest] = cycle + latency
            elif klass == K_STORE:
                mem_slots -= 1
                addr = entry[E_ADDR]
                if not entry[E_WRONG] and addr is not None:
                    access_fn(addr)
            elif klass == K_MUL:
                mul_slots -= 1
                dest = entry[E_DEST]
                if dest and entry[E_EXEC]:
                    gpr_ready[dest] = cycle + mul_latency
            elif klass == K_COMPARE:
                if entry[E_EXEC]:
                    pred_ready[entry[E_DPRED]] = cycle + compare_latency
            elif klass == K_BRANCH:
                branch_slots -= 1
                if entry[E_MISPRED]:
                    pending_redirect = (cycle + branch_resolve_latency,
                                        entry)
            else:
                dest = entry[E_DEST]
                if dest and entry[E_EXEC]:
                    gpr_ready[dest] = cycle + alu_latency

        # ---- fetch --------------------------------------------------------
        fetched = 0
        if cycle >= fetch_resume and cycle >= throttle_until:
            if bubble_prob and rng_random() < bubble_prob:
                bubbles_total += 1
                fetch_resume = cycle + 1 + geometric(
                    1.0 / bubble_len, maximum=20)
            else:
                while fetched < fetch_width \
                        and len(queue) - head < iq_entries:
                    if wrong_path_mode:
                        pc = wrong_pc
                        template = static_templates.get(pc)
                        if template is None:
                            instruction = program.fetch(pc)
                            d = _decode(instruction)
                            template = [None, d[0], d[1], d[2], d[3], True,
                                        0, None, False, None, True,
                                        instruction, d[4]]
                            static_templates[pc] = template
                        wrong_pc = pc + 1
                        entry = template.copy()
                        entry[E_ALLOC] = cycle
                        queue.append(entry)
                        stats["wrong_path_fetched"] += 1
                        fetched += 1
                        continue
                    if trace_ptr >= trace_n:
                        break
                    entry = templates[trace_ptr].copy()
                    entry[E_ALLOC] = cycle
                    if t_br[trace_ptr]:
                        taken = t_taken[trace_ptr]
                        pc = t_pc[trace_ptr]
                        prediction = predictor.update(pc, taken)
                        if prediction != taken:
                            entry[E_MISPRED] = True
                            mispredicted_entry = entry
                            wrong_path_mode = True
                            wrong_pc = (pc + 1 if taken
                                        else pc + t_imm[trace_ptr])
                            queue.append(entry)
                            trace_ptr += 1
                            fetched += 1
                            break  # redirect ends the fetch group
                    queue.append(entry)
                    trace_ptr += 1
                    fetched += 1
        elif cycle < throttle_until:
            stats["throttle_cycles"] += 1

        # ---- termination ---------------------------------------------------
        queue_len = len(queue)
        if trace_ptr >= trace_n and head >= queue_len \
                and not wrong_path_mode:
            break

        # ---- event skip -----------------------------------------------------
        nc = cycle + 1
        gate = fetch_resume if fetch_resume > throttle_until \
            else throttle_until
        fetch_active = gate <= nc
        fetchable = wrong_path_mode or trace_ptr < trace_n
        if fetch_active and fetchable and queue_len - head < iq_entries:
            # A real fetch (or the bernoulli draw gating it) happens next
            # cycle; nothing to skip.
            cycle = nc
            continue
        if committed_now or issued_now or fetched:
            # An eventful cycle: follow-on events next cycle are likely
            # and the event scan below would mostly be wasted. Step.
            cycle = nc
            continue
        # The machine is quiescent. Find the next scheduled event.
        nxt = _INF
        if pending_redirect is not None:
            nxt = pending_redirect[0]
        if pending_squashes:
            for s in pending_squashes:
                if s[0] < nxt:
                    nxt = s[0]
        if head < queue_len:
            entry = queue[head]
            ic = entry[E_ISSUE]
            if not entry[E_WRONG] and ic is not None:
                t = ic + commit_latency
                if t < nxt:
                    nxt = t
        # Earliest issue event: the cycle the first stalled scannable
        # entry's operands are all ready (in-order: only the first
        # non-issued entry matters; windowed OoO: the min over the
        # window). Stale ready-times lie in the past — clamp to nc, which
        # is exactly when the per-cycle loop would re-test them.
        position = head
        scan_limit = queue_len if in_order else \
            min(queue_len, head + scheduler_window)
        while position < scan_limit:
            entry = queue[position]
            position += 1
            if entry[E_ISSUE] is not None:
                continue
            if units_for[entry[E_KLASS]] == 0:
                if in_order:
                    break
                continue
            ready = pready(entry[E_QP], -1)
            for reg in entry[E_SRC]:
                r = gready(reg, -1)
                if r > ready:
                    ready = r
            if ready < nc:
                ready = nc
            if ready < nxt:
                nxt = ready
            if in_order or ready <= nc:
                break
        if nxt <= nc:
            cycle = nc
            continue
        if fetch_active:
            if bubble_prob:
                # Fetch is un-gated but cannot progress (queue full or
                # trace drained): the per-cycle loop still draws one
                # bernoulli per cycle, and a draw can open a bubble that
                # re-gates fetch. Replay the stream, nothing else.
                end = nxt if nxt < max_cycles else max_cycles
                x = nc
                while x < end:
                    if x < fetch_resume:
                        x = fetch_resume if fetch_resume < end else end
                        continue
                    if rng_random() < bubble_prob:
                        bubbles_total += 1
                        fetch_resume = x + 1 + geometric(
                            1.0 / bubble_len, maximum=20)
                    x += 1
                cycle = end
                continue
            # No draws possible: pure skip to the event.
        elif gate < nxt and (fetchable or bubble_prob):
            # The fetch gate releasing is itself an event.
            nxt = gate
        if nxt > max_cycles:
            nxt = max_cycles
        if throttle_until > nc:
            limit = throttle_until if throttle_until < nxt else nxt
            stats["throttle_cycles"] += limit - nc
        cycle = nxt
    else:
        raise RuntimeError(
            f"timing simulation exceeded {cfg.max_cycles} cycles "
            f"({sim.program.name})")

    stats["l0_misses"] = l0_miss_total
    stats["l1_misses"] = l1_miss_total
    stats["l2_misses"] = l2_miss_total
    stats["loads"] = loads_total
    stats["fetch_bubbles"] += bubbles_total
    stats["branch_predictions"] = predictor.predictions
    stats["branch_mispredictions"] = predictor.mispredictions
    return PipelineResult(
        cycles=cycle,
        committed=trace_n,
        intervals=IntervalTimeline(log),
        iq_entries=iq_entries,
        stats=stats,
    )
