"""Machine configuration (paper Section 5 defaults).

The modeled processor is an Itanium®2-like in-order IA64 machine: 2.5 GHz,
25-cycle pipeline, issue width six, 64-entry instruction queue, and an
8 KB / 256 KB / 10 MB cache hierarchy at 2 / 10 / 25 cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, unique

from repro.memory.hierarchy import HierarchyConfig


@unique
class Trigger(Enum):
    """Exposure-reduction trigger: which load-miss level initiates action."""

    NONE = "none"
    L1_MISS = "l1_miss"  # load missed in the L1 (access went to L2)
    L0_MISS = "l0_miss"  # load missed in the L0 (access went to L1)


@unique
class IssuePolicy(Enum):
    """Issue discipline.

    The paper's machine is in-order: a not-ready instruction blocks all
    younger ones, which is why instructions pile up behind a missing load
    and why squashing them is nearly free. The windowed out-of-order
    variant issues any ready instruction among the oldest
    ``scheduler_window`` queue entries — the paper's remark that the
    situation is "similar, though not as pronounced, for out-of-order
    machines" becomes measurable.
    """

    IN_ORDER = "in_order"
    OOO_WINDOW = "ooo_window"


@unique
class SquashAction(Enum):
    """What to do when the trigger fires."""

    SQUASH = "squash"  # remove younger instructions from the IQ, refetch
    THROTTLE = "throttle"  # stall the front end until the miss returns


@dataclass(frozen=True)
class SquashConfig:
    """Exposure-reduction policy for the instruction queue."""

    trigger: Trigger = Trigger.NONE
    action: SquashAction = SquashAction.SQUASH
    #: When True, hold refetched instructions in protected storage until
    #: the miss data is about to return, so they re-accumulate no exposure;
    #: when False (default), refetch begins immediately and the refetched
    #: instructions wait out the remainder of the miss in the queue. The
    #: benchmark suite carries an ablation comparing the two.
    resume_at_miss_return: bool = False


@dataclass(frozen=True)
class MachineConfig:
    """Structural and timing parameters of the modeled core."""

    fetch_width: int = 6
    issue_width: int = 6
    commit_width: int = 6
    iq_entries: int = 64
    issue_policy: IssuePolicy = IssuePolicy.IN_ORDER
    #: Oldest entries the scheduler may pick from under OOO_WINDOW.
    scheduler_window: int = 16
    #: Cycles from a fetch redirect until new instructions reach the IQ.
    frontend_depth: int = 8
    #: Cycles from a mispredicted branch's issue until the redirect.
    branch_resolve_latency: int = 5
    #: Minimum cycles an issued instruction lingers before deallocation
    #: (Ex-ACE residency: kept in case of replay).
    commit_latency: int = 3
    alu_latency: int = 1
    mul_latency: int = 3
    compare_latency: int = 1
    #: Functional-unit counts per cycle.
    mem_ports: int = 2
    mul_units: int = 2
    branch_units: int = 3
    frequency_ghz: float = 2.5
    hierarchy: HierarchyConfig = field(default_factory=HierarchyConfig)
    squash: SquashConfig = field(default_factory=SquashConfig)
    #: Probability the front end delivers no instructions in a cycle
    #: (models I-cache misses and fetch-bundle breaks); usually taken from
    #: the workload profile.
    fetch_bubble_prob: float = 0.25
    #: Mean length (cycles) of a front-end bubble once one begins.
    fetch_bubble_mean_len: float = 3.0
    #: Number of trailing trace accesses replayed into the L0/L1 during
    #: warmup (the recent-reference state a long-running program leaves).
    warmup_tail_accesses: int = 1536
    #: Pre-touch every traced address through the hierarchy before timing.
    #: The paper measures 100M-instruction SimPoint slices of long-running
    #: programs, i.e. with warm caches; cold-start compulsory misses would
    #: dominate our much shorter traces otherwise.
    warm_caches: bool = True
    max_cycles: int = 30_000_000

    def __post_init__(self) -> None:
        if self.iq_entries <= 0:
            raise ValueError("iq_entries must be positive")
        for name in ("fetch_width", "issue_width", "commit_width",
                     "frontend_depth", "branch_resolve_latency",
                     "commit_latency", "mem_ports"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if not 0.0 <= self.fetch_bubble_prob < 1.0:
            raise ValueError("fetch_bubble_prob must be in [0, 1)")
