"""Architectural vulnerability factor (AVF) computation — paper Section 2.

``ace`` holds the per-bit ACE rules for each occupant class; ``occupancy``
integrates classified bit-time over the pipeline's IQ occupancy intervals;
``avf_calc`` packages the result as SDC / DUE AVFs with the false-DUE
category decomposition; ``mitf`` implements the FIT/MTTF/MITF algebra,
including the paper's new Mean-Instructions-To-Failure metric.
"""

from repro.avf.ace import BitWeights, bit_weights_for
from repro.avf.avf_calc import IqAvfReport, compute_iq_avf
from repro.avf.mitf import (
    FIT_PER_MTBF_YEAR,
    SoftErrorRateModel,
    fit_from_mttf_years,
    mitf,
    mitf_ratio,
    mttf_years_from_fit,
)
from repro.avf.occupancy import (
    AccountingPolicy,
    OccupancyBreakdown,
    compute_breakdown,
)

__all__ = [
    "BitWeights",
    "bit_weights_for",
    "IqAvfReport",
    "compute_iq_avf",
    "FIT_PER_MTBF_YEAR",
    "SoftErrorRateModel",
    "fit_from_mttf_years",
    "mitf",
    "mitf_ratio",
    "mttf_years_from_fit",
    "AccountingPolicy",
    "OccupancyBreakdown",
    "compute_breakdown",
]
