"""Chip-level soft-error budgeting (paper Section 2).

Vendors specify separate SDC and DUE rate targets for a whole processor
(the paper cites Bossen's IRPS tutorial [4]; a commonly quoted pair is a
1000-year SDC MTBF and a 10-25-year DUE MTBF). The chip-level rates are
sums over structures of raw rate x AVF:

    SDC rate = sum_d  error_rate_d x SDC_AVF_d
    DUE rate = sum_d  error_rate_d x DUE_AVF_d

This module composes per-structure contributions into a budget check, so
the instruction-queue AVF reductions of this paper can be placed in a
whole-chip context.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.avf.mitf import mttf_years_from_fit


@dataclass(frozen=True)
class StructureContribution:
    """One protected-or-not storage structure on the chip."""

    name: str
    bits: int
    raw_fit_per_bit: float
    #: AVF of the unprotected structure (drives SDC when unprotected).
    sdc_avf: float
    #: DUE AVF when the structure has detection-only protection
    #: (0 for unprotected or fully corrected structures).
    due_avf: float = 0.0
    #: True when the structure has error detection (parity): its SDC
    #: contribution is then zero and its DUE contribution is due_avf.
    detected: bool = False

    def __post_init__(self) -> None:
        if self.bits <= 0 or self.raw_fit_per_bit <= 0:
            raise ValueError(f"{self.name}: bits and raw rate must be positive")
        for label, value in (("sdc_avf", self.sdc_avf),
                             ("due_avf", self.due_avf)):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{self.name}: {label} out of [0, 1]")

    @property
    def raw_fit(self) -> float:
        return self.bits * self.raw_fit_per_bit

    @property
    def sdc_fit(self) -> float:
        return 0.0 if self.detected else self.raw_fit * self.sdc_avf

    @property
    def due_fit(self) -> float:
        return self.raw_fit * self.due_avf if self.detected else 0.0


@dataclass
class ChipBudget:
    """Aggregates structures against SDC/DUE MTTF targets (in years)."""

    sdc_mttf_target_years: float = 1000.0
    due_mttf_target_years: float = 25.0
    structures: List[StructureContribution] = field(default_factory=list)

    def add(self, structure: StructureContribution) -> None:
        if any(s.name == structure.name for s in self.structures):
            raise ValueError(f"duplicate structure {structure.name!r}")
        self.structures.append(structure)

    @property
    def sdc_fit(self) -> float:
        return sum(s.sdc_fit for s in self.structures)

    @property
    def due_fit(self) -> float:
        return sum(s.due_fit for s in self.structures)

    def sdc_mttf_years(self) -> float:
        if self.sdc_fit == 0.0:
            return float("inf")
        return mttf_years_from_fit(self.sdc_fit)

    def due_mttf_years(self) -> float:
        if self.due_fit == 0.0:
            return float("inf")
        return mttf_years_from_fit(self.due_fit)

    def meets_sdc_target(self) -> bool:
        return self.sdc_mttf_years() >= self.sdc_mttf_target_years

    def meets_due_target(self) -> bool:
        return self.due_mttf_years() >= self.due_mttf_target_years

    def headroom(self) -> Dict[str, float]:
        """MTTF / target ratios (>= 1.0 means the budget is met)."""
        return {
            "sdc": self.sdc_mttf_years() / self.sdc_mttf_target_years,
            "due": self.due_mttf_years() / self.due_mttf_target_years,
        }

    def dominant_contributor(self, kind: str = "sdc") -> Optional[str]:
        """Structure contributing the most FIT of the given kind."""
        key = {"sdc": lambda s: s.sdc_fit, "due": lambda s: s.due_fit}[kind]
        contributors = [s for s in self.structures if key(s) > 0]
        if not contributors:
            return None
        return max(contributors, key=key).name
