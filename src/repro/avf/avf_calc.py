"""Top-level AVF report for one benchmark run."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.analysis.deadcode import DeadnessAnalysis
from repro.avf.mitf import mitf_ratio
from repro.avf.occupancy import (
    AccountingPolicy,
    OccupancyBreakdown,
    compute_breakdown,
)
from repro.pipeline.result import PipelineResult


@dataclass
class IqAvfReport:
    """IPC plus the instruction queue's SDC/DUE AVFs for one run."""

    name: str
    ipc: float
    cycles: int
    committed: int
    breakdown: OccupancyBreakdown

    @property
    def sdc_avf(self) -> float:
        return self.breakdown.sdc_avf

    @property
    def due_avf(self) -> float:
        return self.breakdown.due_avf

    @property
    def false_due_avf(self) -> float:
        return self.breakdown.false_due_avf

    @property
    def ipc_over_sdc_avf(self) -> float:
        """SDC MITF figure of merit (Table 1's 'IPC / SDC AVF')."""
        return mitf_ratio(self.ipc, self.sdc_avf)

    @property
    def ipc_over_due_avf(self) -> float:
        """DUE MITF figure of merit (Table 1's 'IPC / DUE AVF')."""
        return mitf_ratio(self.ipc, self.due_avf)

    def false_due_components(self) -> Dict[str, float]:
        return self.breakdown.false_due_components()

    def residency_summary(self) -> Dict[str, float]:
        """The Section 4.1 decomposition of entry-state time."""
        b = self.breakdown
        return {
            "idle": b.idle_fraction,
            "ace": b.sdc_avf,
            "valid_unace": b.false_due_avf,
            "ex_ace": b.ex_ace_fraction,
            "unread": b.unread_fraction,
        }


def compute_iq_avf(
    name: str,
    result: PipelineResult,
    deadness: Optional[DeadnessAnalysis],
    policy: AccountingPolicy = AccountingPolicy.CONSERVATIVE,
) -> IqAvfReport:
    """Build the AVF report for one pipeline run."""
    breakdown = compute_breakdown(result, deadness, policy)
    return IqAvfReport(
        name=name,
        ipc=result.ipc,
        cycles=result.cycles,
        committed=result.committed,
        breakdown=breakdown,
    )
