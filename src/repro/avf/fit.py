"""FIT projection across technology nodes and radiation environments.

The campaign layer produces dimensionless AVFs; turning them into
failure rates needs two physical inputs (paper Section 2): the raw
per-bit soft-error rate of the storage technology and the particle-flux
multiplier of the operating environment. This module carries published
reference values for both and composes them with injected AVFs into a
deterministic node x environment FIT matrix::

    FIT(structure) = raw_FIT/Mb(node) x Mb(structure) x flux(env) x AVF

so the ECC design-space sweep (:mod:`repro.experiments.fitsweep`) can
report each scheme's residual SDC/DUE rates as failure intervals a
reliability budget can be checked against. Because the node and
environment factors multiply *every* scheme's FIT by the same constant,
the scheme ranking is node- and environment-independent — it is decided
by the residual AVFs alone, with check-bit overhead as the tie-breaker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.avf.mitf import mttf_years_from_fit
from repro.due.tracking import (
    CHECK_BITS,
    BurstAction,
    EccScheme,
    classify_burst,
)
from repro.faults.mbu import CANONICAL_MASKS, BurstPattern, MbuPreset

#: Published per-technology raw SER of SRAM, in FIT per megabit. The
#: downward march reflects the shrinking collected charge per cell and
#: the move to FinFETs; values follow the vendor-reported curve used in
#: recent reliability surveys.
FIT_PER_MEGABIT: Dict[str, float] = {
    "28nm": 74.0,
    "16nm": 5.0,
    "7nm": 0.4,
}

#: Neutron/proton flux multiplier relative to sea level (terrestrial
#: consumer parts): commercial avionics cruise altitude sees a few
#: hundred times the sea-level flux, low-earth orbit several tens of
#: thousands.
ENV_MULTIPLIER: Dict[str, float] = {
    "consumer": 1.0,
    "avionics": 300.0,
    "space": 50_000.0,
}

#: Deterministic iteration orders for exhibits (insertion order above is
#: already scaled; pin it explicitly so formatting never depends on dict
#: semantics).
NODES: Tuple[str, ...] = ("28nm", "16nm", "7nm")
ENVIRONMENTS: Tuple[str, ...] = ("consumer", "avionics", "space")

#: The modeled 64-entry, 41-bit instruction queue.
DEFAULT_STRUCTURE_BITS = 64 * 41

_BITS_PER_MEGABIT = 1e6


def raw_structure_fit(node: str, bits: int = DEFAULT_STRUCTURE_BITS,
                      environment: str = "consumer") -> float:
    """Raw (AVF = 1) FIT of a ``bits``-bit structure at ``node``/``env``."""
    if node not in FIT_PER_MEGABIT:
        raise ValueError(
            f"unknown technology node {node!r}; choose from "
            f"{', '.join(NODES)}")
    if environment not in ENV_MULTIPLIER:
        raise ValueError(
            f"unknown environment {environment!r}; choose from "
            f"{', '.join(ENVIRONMENTS)}")
    if bits <= 0:
        raise ValueError("structure size must be positive")
    return (FIT_PER_MEGABIT[node] * (bits / _BITS_PER_MEGABIT)
            * ENV_MULTIPLIER[environment])


@dataclass(frozen=True)
class FitCell:
    """One (node, environment) cell of a FIT projection."""

    node: str
    environment: str
    sdc_fit: float
    due_fit: float

    @property
    def total_fit(self) -> float:
        return self.sdc_fit + self.due_fit

    @property
    def mttf_years(self) -> float:
        """MTTF implied by the cell's total FIT (inf when FIT is zero)."""
        if self.total_fit <= 0.0:
            return float("inf")
        return mttf_years_from_fit(self.total_fit)


def fit_matrix(sdc_avf: float, due_avf: float,
               bits: int = DEFAULT_STRUCTURE_BITS) -> Tuple[FitCell, ...]:
    """Every (node, environment) FIT cell for one AVF pair, in pinned order."""
    for name, avf in (("sdc", sdc_avf), ("due", due_avf)):
        if not 0.0 <= avf <= 1.0:
            raise ValueError(f"{name} AVF must be in [0, 1], got {avf}")
    cells = []
    for node in NODES:
        for environment in ENVIRONMENTS:
            raw = raw_structure_fit(node, bits, environment)
            cells.append(FitCell(node, environment,
                                 sdc_fit=raw * sdc_avf,
                                 due_fit=raw * due_avf))
    return tuple(cells)


def action_fractions(scheme: Optional[EccScheme],
                     preset: MbuPreset) -> Dict[BurstAction, float]:
    """Analytic decoder action mix of ``scheme`` under ``preset``'s PMF.

    Weighs :func:`~repro.due.tracking.classify_burst` over the canonical
    mask of each drawable pattern (classification depends only on the
    pattern's weight/adjacency shape, so the canonical mask stands for
    every drawn mask). ``scheme=None`` models the unprotected queue:
    everything escapes. This is the closed-form reference the injected
    campaign estimates converge to — the sweep exhibit prints both.
    """
    fractions = {action: 0.0 for action in BurstAction}
    for pattern in BurstPattern:
        probability = preset.probability(pattern)
        if scheme is None:
            action = BurstAction.ESCAPE
        else:
            action = classify_burst(scheme, CANONICAL_MASKS[pattern])
        fractions[action] += probability
    return fractions


def rank_schemes(
    residuals: Dict[EccScheme, Tuple[float, float]],
) -> Tuple[EccScheme, ...]:
    """Schemes ordered best-first by residual failure rate.

    ``residuals`` maps each scheme to its measured ``(sdc_avf,
    due_avf)`` pair. Raw node/environment FIT is a constant multiplier
    across schemes, so the FIT ranking reduces to the AVF pairs: silent
    corruption first (the reliability budget's hard currency), detected
    rate second, check-bit overhead as the final tie-breaker (cheapest
    adequate code wins).
    """
    def key(scheme: EccScheme):
        sdc, due = residuals[scheme]
        return (sdc, due, CHECK_BITS[scheme])

    return tuple(sorted(residuals, key=key))


def scheme_fit_cells(
    scheme_residuals: Dict[EccScheme, Tuple[float, float]],
    bits: int = DEFAULT_STRUCTURE_BITS,
) -> Dict[EccScheme, Tuple[FitCell, ...]]:
    """The full node x environment matrix for every swept scheme."""
    return {scheme: fit_matrix(sdc, due, bits)
            for scheme, (sdc, due) in scheme_residuals.items()}


__all__ = [
    "FIT_PER_MEGABIT",
    "ENV_MULTIPLIER",
    "NODES",
    "ENVIRONMENTS",
    "DEFAULT_STRUCTURE_BITS",
    "raw_structure_fit",
    "FitCell",
    "fit_matrix",
    "action_fractions",
    "rank_schemes",
    "scheme_fit_cells",
]
