"""Per-bit ACE rules for instruction-queue occupants.

The paper's Section 4.1 rules, applied to the 41-bit REPRO-64 syllable:

* a **live** (ACE) instruction: every bit is ACE while it awaits issue;
* a **neutral** instruction (no-op / prefetch / hint): only the 7 opcode
  bits are ACE — "faults in bits other than the opcode bits will not affect
  a program's final outcome";
* a **dynamically dead** instruction: only the 7 destination-specifier bits
  are ACE — "a strike on any bit ... except the destination register
  specifier bits, will not change the final outcome";
* **wrong-path** and **predicated-false** instructions: nothing is ACE;
* **squash victims** are refetched from protected storage, so their
  residency cannot produce an error at all (and they are never read).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.deadcode import DynClass
from repro.isa.encoding import ENCODING_BITS, OPCODE_BITS, R1_BITS
from repro.pipeline.iq import OccupancyInterval, OccupantKind

#: Category label used for wrong-path occupants (not a DynClass: wrong-path
#: instructions never commit, so the trace analysis never sees them).
WRONG_PATH_CATEGORY = "wrong_path"


@dataclass(frozen=True)
class BitWeights:
    """How an occupant's 41 bits split between ACE and one un-ACE category."""

    ace_bits: int
    unace_bits: int
    unace_category: Optional[str]  # None when unace_bits == 0

    def __post_init__(self) -> None:
        if self.ace_bits + self.unace_bits != ENCODING_BITS:
            raise ValueError("bit weights must cover the whole encoding")
        if (self.unace_bits > 0) != (self.unace_category is not None):
            raise ValueError("unace_category must accompany unace_bits")


_LIVE = BitWeights(ENCODING_BITS, 0, None)
_NEUTRAL = BitWeights(OPCODE_BITS, ENCODING_BITS - OPCODE_BITS,
                      DynClass.NEUTRAL.value)
_PRED_FALSE = BitWeights(0, ENCODING_BITS, DynClass.PRED_FALSE.value)
_WRONG_PATH = BitWeights(0, ENCODING_BITS, WRONG_PATH_CATEGORY)


def _dead(cls: DynClass) -> BitWeights:
    return BitWeights(R1_BITS, ENCODING_BITS - R1_BITS, cls.value)


_BY_CLASS = {
    DynClass.LIVE: _LIVE,
    DynClass.NEUTRAL: _NEUTRAL,
    DynClass.PRED_FALSE: _PRED_FALSE,
    DynClass.FDD_REG: _dead(DynClass.FDD_REG),
    DynClass.FDD_REG_RETURN: _dead(DynClass.FDD_REG_RETURN),
    DynClass.TDD_REG: _dead(DynClass.TDD_REG),
    DynClass.FDD_MEM: _dead(DynClass.FDD_MEM),
    DynClass.TDD_MEM: _dead(DynClass.TDD_MEM),
}

# -- interval-record path ----------------------------------------------------
# The closed-form breakdown over an IntervalTimeline classifies occupants
# by small integer codes instead of per-object dispatch: one code per
# DynClass (in declaration order) plus a trailing code for wrong-path
# occupants. ``WEIGHTS_BY_CODE[code]`` is exactly what
# :func:`bit_weights_for` would return for the same occupant.

CLASS_ORDER = tuple(DynClass)
CODE_OF = {cls: code for code, cls in enumerate(CLASS_ORDER)}
WRONG_PATH_CODE = len(CLASS_ORDER)
WEIGHTS_BY_CODE = tuple(_BY_CLASS[cls] for cls in CLASS_ORDER) + (
    _WRONG_PATH,)


def bit_weights_for(
    interval: OccupancyInterval,
    dyn_class: Optional[DynClass],
    squash_victims_harmless: bool = False,
) -> BitWeights:
    """Bit weights for one IQ occupancy interval.

    ``dyn_class`` is the trace classification of the occupant (None for
    wrong-path occupants, which have no commit-sequence number).

    ``squash_victims_harmless`` selects the accounting for exposure-squash
    victims. A squashed instruction is refetched from protected storage, so
    a strike on its pre-squash residency provably cannot cause an error;
    the paper's conservative ACE methodology nevertheless counts that
    residency by the occupant's own class (the squash gains it reports come
    from the queue sitting *empty* during the miss shadow). The default
    follows the paper; the harmless accounting is available as an ablation.
    """
    if interval.kind is OccupantKind.WRONG_PATH:
        return _WRONG_PATH
    if interval.kind is OccupantKind.SQUASHED and squash_victims_harmless:
        return _WRONG_PATH
    if dyn_class is None:
        raise ValueError("committed interval requires its DynClass")
    return _BY_CLASS[dyn_class]
