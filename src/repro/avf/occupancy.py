"""Integration of classified bit-time over IQ occupancy intervals.

Produces the paper's Section 4.1 residency decomposition (idle / ACE /
valid-un-ACE / Ex-ACE) and the per-category false-DUE composition that
Figures 2 and 4 are built from.

Accounting rules (see ``repro.avf.ace`` for per-bit classification):

* Only the **vulnerable span** — allocation to last read (issue) — can turn
  a strike into an SDC or DUE event; parity is checked when the entry is
  read, and a value is consumed for the last time at its last read.
* The **Ex-ACE span** (last read to deallocation) and the residency of
  never-read occupants contribute to neither rate.
* Idle entries contribute nothing.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from enum import Enum, unique
from typing import Dict, Optional

from repro.analysis.deadcode import DeadnessAnalysis, DynClass
from repro.avf.ace import (
    CODE_OF,
    WEIGHTS_BY_CODE,
    WRONG_PATH_CODE,
    bit_weights_for,
)
from repro.isa.encoding import ENCODING_BITS
from repro.pipeline.iq import (
    KIND_SQUASHED,
    KIND_WRONG_PATH,
    NO_VALUE,
    OccupantKind,
)
from repro.pipeline.result import PipelineResult

try:  # NumPy accelerates the interval-record path; optional.
    import numpy as _np
except ImportError:  # pragma: no cover - the image bakes numpy in
    _np = None


@unique
class AccountingPolicy(Enum):
    """How to account occupants that are never read.

    * ``CONSERVATIVE`` (paper-faithful): residency of never-read occupants
      — exposure-squash victims and never-issued wrong-path instructions —
      is charged at the occupant's own classification over its entire stay.
      This mirrors the conservative ACE methodology the paper builds on
      ("if it cannot be proven un-ACE, it is ACE"): squashing then pays off
      by keeping the queue *empty* during miss shadows.
    * ``READ_GATED``: only the allocation-to-last-read window counts.
      Squash victims are provably harmless (the refetch reloads clean bits
      from protected storage), so their residency contributes nothing.
      This is the tighter analysis; the benchmark suite carries an ablation
      comparing the two.
    """

    CONSERVATIVE = "conservative"
    READ_GATED = "read_gated"

#: DynClasses whose false-DUE share the PET buffer can shrink, bucketed by
#: overwrite distance (paper Figure 3's three series).
_PET_TRACKED = (DynClass.FDD_REG, DynClass.FDD_REG_RETURN, DynClass.FDD_MEM)


@dataclass
class OccupancyBreakdown:
    """Bit-cycle totals for one pipeline run's instruction queue."""

    cycles: int
    entries: int
    bits_per_entry: int = ENCODING_BITS
    ace_bit_cycles: float = 0.0
    #: category name -> un-ACE bit-cycles within vulnerable spans.
    unace_bit_cycles: Dict[str, float] = field(default_factory=dict)
    ex_ace_bit_cycles: float = 0.0
    #: Residency of occupants that were never read (squash victims,
    #: never-issued wrong-path instructions).
    unread_bit_cycles: float = 0.0
    resident_bit_cycles: float = 0.0
    #: For FDD classes: overwrite distance (commits; None = never) ->
    #: vulnerable bit-cycles. Drives the PET-buffer residency coverage.
    fdd_distance_weights: Dict[DynClass, Counter] = field(default_factory=dict)

    # -- denominators and fractions -----------------------------------------

    @property
    def total_bit_cycles(self) -> float:
        return float(self.bits_per_entry) * self.entries * self.cycles

    def _frac(self, value: float) -> float:
        total = self.total_bit_cycles
        return value / total if total else 0.0

    @property
    def sdc_avf(self) -> float:
        """AVF of the unprotected queue (paper: ~29 % baseline)."""
        return self._frac(self.ace_bit_cycles)

    @property
    def true_due_avf(self) -> float:
        """With parity, every SDC event becomes a true DUE event."""
        return self.sdc_avf

    @property
    def false_due_avf(self) -> float:
        return self._frac(sum(self.unace_bit_cycles.values()))

    @property
    def due_avf(self) -> float:
        """DUE AVF of the parity-protected queue with no false-DUE tracking."""
        return self.true_due_avf + self.false_due_avf

    def false_due_components(self) -> Dict[str, float]:
        """Per-category false-DUE AVF contributions."""
        return {name: self._frac(v) for name, v in self.unace_bit_cycles.items()}

    @property
    def ex_ace_fraction(self) -> float:
        return self._frac(self.ex_ace_bit_cycles)

    @property
    def idle_fraction(self) -> float:
        return 1.0 - self._frac(self.resident_bit_cycles)

    @property
    def unread_fraction(self) -> float:
        return self._frac(self.unread_bit_cycles)

    def pet_covered_fraction(
        self,
        pet_entries: int,
        classes: tuple = (DynClass.FDD_REG,),
    ) -> float:
        """Residency-weighted share of the given FDD classes whose death is
        provable by a PET buffer of ``pet_entries`` entries.

        A retired instruction is evicted after ``pet_entries`` further
        commits; its overwriter must still be in the buffer, i.e. within
        that distance, for the scan to prove it dead.
        """
        covered = 0.0
        total = 0.0
        for cls in classes:
            weights = self.fdd_distance_weights.get(cls)
            if not weights:
                continue
            for distance, weight in weights.items():
                total += weight
                if distance is not None and distance <= pet_entries:
                    covered += weight
        if total == 0.0:
            return 0.0
        return covered / total


def compute_breakdown(
    result: PipelineResult,
    deadness: Optional[DeadnessAnalysis],
    policy: AccountingPolicy = AccountingPolicy.CONSERVATIVE,
) -> OccupancyBreakdown:
    """Integrate one timing run's intervals against the trace classification.

    ``deadness`` may be None only when the run contains no committed or
    squashed intervals (useful in unit tests of wrong-path behaviour).

    A run carrying an :class:`~repro.pipeline.iq.IntervalTimeline` (the
    interval kernel's columnar log) is integrated by closed-form interval
    arithmetic over the columns — vectorised under NumPy when available —
    without materialising interval objects. Every term is an integer
    bit-cycle count well below 2**53, so float accumulation is exact in
    any order and both paths produce identical breakdowns
    (``tests/test_interval_kernel.py`` proves it).
    """
    breakdown = OccupancyBreakdown(cycles=result.cycles,
                                   entries=result.iq_entries)
    conservative = policy is AccountingPolicy.CONSERVATIVE
    timeline = result.timeline
    if timeline is not None:
        if _np is not None:
            _integrate_timeline_numpy(breakdown, timeline, deadness,
                                      conservative)
        else:
            _integrate_timeline_rows(breakdown, timeline, deadness,
                                     conservative)
        return breakdown
    bits = breakdown.bits_per_entry
    unace = breakdown.unace_bit_cycles
    fdd_weights = breakdown.fdd_distance_weights
    harmless_victims = not conservative

    for interval in result.intervals:
        resident = interval.resident_cycles
        breakdown.resident_bit_cycles += bits * resident
        if interval.issued:
            vulnerable = interval.vulnerable_cycles
            breakdown.ex_ace_bit_cycles += bits * interval.ex_ace_cycles
        elif conservative:
            # Never read, but charged for its whole stay at its own class.
            vulnerable = resident
        else:
            breakdown.unread_bit_cycles += bits * resident
            continue

        if interval.kind is OccupantKind.WRONG_PATH:
            dyn_class = None
        else:
            if deadness is None:
                raise ValueError(
                    "committed/squashed intervals need a DeadnessAnalysis")
            dyn_class = deadness.class_of(interval.seq)
        weights = bit_weights_for(interval, dyn_class,
                                  squash_victims_harmless=harmless_victims)

        if vulnerable <= 0:
            continue
        breakdown.ace_bit_cycles += weights.ace_bits * vulnerable
        if weights.unace_bits:
            contribution = weights.unace_bits * vulnerable
            unace[weights.unace_category] = (
                unace.get(weights.unace_category, 0.0) + contribution)
            if dyn_class in _PET_TRACKED:
                counter = fdd_weights.setdefault(dyn_class, Counter())
                distance = deadness.overwrite_distance.get(interval.seq)
                counter[distance] += contribution
    return breakdown


# -- interval-record integration ---------------------------------------------
# Both integrators below consume the timeline's integer columns directly.
# Exactness: every per-row contribution is (bit count) * (cycle count) — an
# integer below 2**53 — so float64 accumulation is exact in any order and
# regrouping rows by class code (the vectorised path) changes nothing.


_DEADNESS_CACHE_ATTR = "_interval_kernel_arrays"


def _deadness_arrays(deadness: DeadnessAnalysis):
    """(class-code, overwrite-distance) arrays indexed by seq, cached on the
    analysis instance so repeated breakdowns (ablations, both accounting
    policies) pay the conversion once."""
    cached = getattr(deadness, _DEADNESS_CACHE_ATTR, None)
    if cached is not None:
        return cached
    n = len(deadness.classes)
    codes = _np.fromiter((CODE_OF[cls] for cls in deadness.classes),
                         dtype=_np.int64, count=n)
    dist = _np.full(n, NO_VALUE, dtype=_np.int64)
    for seq, distance in deadness.overwrite_distance.items():
        if distance is not None:
            dist[seq] = distance
    arrays = (codes, dist)
    setattr(deadness, _DEADNESS_CACHE_ATTR, arrays)
    return arrays


def _integrate_timeline_numpy(
    breakdown: OccupancyBreakdown,
    timeline,
    deadness: Optional[DeadnessAnalysis],
    conservative: bool,
) -> None:
    """Vectorised closed-form integration of an IntervalTimeline."""
    n = len(timeline.kind)
    if n == 0:
        return
    bits = float(breakdown.bits_per_entry)
    seq = _np.frombuffer(timeline.seq, dtype=_np.int64)
    kind = _np.frombuffer(timeline.kind, dtype=_np.int8)
    alloc = _np.frombuffer(timeline.alloc, dtype=_np.int64)
    issue = _np.frombuffer(timeline.issue, dtype=_np.int64)
    dealloc = _np.frombuffer(timeline.dealloc, dtype=_np.int64)

    resident = dealloc - alloc
    issued = issue != NO_VALUE
    breakdown.resident_bit_cycles = bits * float(resident.sum())
    breakdown.ex_ace_bit_cycles = bits * float(
        (dealloc[issued] - issue[issued]).sum())

    if conservative:
        vulnerable = _np.where(issued, issue - alloc, resident)
        counted = _np.ones(n, dtype=bool)
    else:
        # READ_GATED: never-read occupants contribute nothing.
        vulnerable = _np.where(issued, issue - alloc, 0)
        counted = issued
        breakdown.unread_bit_cycles = bits * float(
            resident[~issued].sum())

    wrong = kind == KIND_WRONG_PATH
    needs_class = counted & ~wrong
    codes = _np.full(n, WRONG_PATH_CODE, dtype=_np.int64)
    if needs_class.any():
        if deadness is None:
            raise ValueError(
                "committed/squashed intervals need a DeadnessAnalysis")
        class_codes, distances = _deadness_arrays(deadness)
        codes[needs_class] = class_codes[seq[needs_class]]
        if not conservative:
            # Squash victims are provably harmless under read-gating.
            codes[kind == KIND_SQUASHED] = WRONG_PATH_CODE
    else:
        distances = None

    contrib = counted & (vulnerable > 0)
    if not contrib.any():
        return
    c_codes = codes[contrib]
    c_vulnerable = vulnerable[contrib].astype(_np.float64)
    ncodes = len(WEIGHTS_BY_CODE)
    sums = _np.bincount(c_codes, weights=c_vulnerable, minlength=ncodes)
    breakdown.ace_bit_cycles = float(sum(
        WEIGHTS_BY_CODE[code].ace_bits * sums[code]
        for code in range(ncodes) if sums[code]))
    unace = breakdown.unace_bit_cycles
    for code in range(ncodes):
        weights = WEIGHTS_BY_CODE[code]
        if weights.unace_bits and sums[code]:
            unace[weights.unace_category] = (
                unace.get(weights.unace_category, 0.0)
                + weights.unace_bits * float(sums[code]))
    if distances is None:
        return
    for cls in _PET_TRACKED:
        code = CODE_OF[cls]
        rows = contrib & (codes == code)
        if not rows.any():
            continue
        weight = WEIGHTS_BY_CODE[code].unace_bits
        row_dist = distances[seq[rows]]
        row_weight = vulnerable[rows].astype(_np.float64) * weight
        uniq, inverse = _np.unique(row_dist, return_inverse=True)
        totals = _np.bincount(inverse, weights=row_weight)
        counter = Counter()
        for value, total in zip(uniq.tolist(), totals.tolist()):
            counter[None if value == NO_VALUE else int(value)] = total
        breakdown.fdd_distance_weights[cls] = counter


def _integrate_timeline_rows(
    breakdown: OccupancyBreakdown,
    timeline,
    deadness: Optional[DeadnessAnalysis],
    conservative: bool,
) -> None:
    """Column-loop fallback when NumPy is unavailable (same results)."""
    bits = breakdown.bits_per_entry
    unace = breakdown.unace_bit_cycles
    fdd_weights = breakdown.fdd_distance_weights
    classes = deadness.classes if deadness is not None else None
    overwrite = (deadness.overwrite_distance
                 if deadness is not None else None)
    for seq, kind, alloc, issue, dealloc in zip(
            timeline.seq, timeline.kind, timeline.alloc, timeline.issue,
            timeline.dealloc):
        resident = dealloc - alloc
        breakdown.resident_bit_cycles += bits * resident
        if issue != NO_VALUE:
            vulnerable = issue - alloc
            breakdown.ex_ace_bit_cycles += bits * (dealloc - issue)
        elif conservative:
            vulnerable = resident
        else:
            breakdown.unread_bit_cycles += bits * resident
            continue
        dyn_class = None
        if kind == KIND_WRONG_PATH:
            code = WRONG_PATH_CODE
        else:
            if classes is None:
                raise ValueError(
                    "committed/squashed intervals need a DeadnessAnalysis")
            dyn_class = classes[seq]
            if kind == KIND_SQUASHED and not conservative:
                code = WRONG_PATH_CODE
            else:
                code = CODE_OF[dyn_class]
        if vulnerable <= 0:
            continue
        weights = WEIGHTS_BY_CODE[code]
        breakdown.ace_bit_cycles += weights.ace_bits * vulnerable
        if weights.unace_bits:
            contribution = weights.unace_bits * vulnerable
            unace[weights.unace_category] = (
                unace.get(weights.unace_category, 0.0) + contribution)
            if code != WRONG_PATH_CODE and dyn_class in _PET_TRACKED:
                counter = fdd_weights.setdefault(dyn_class, Counter())
                counter[overwrite.get(seq)] += contribution
