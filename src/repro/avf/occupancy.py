"""Integration of classified bit-time over IQ occupancy intervals.

Produces the paper's Section 4.1 residency decomposition (idle / ACE /
valid-un-ACE / Ex-ACE) and the per-category false-DUE composition that
Figures 2 and 4 are built from.

Accounting rules (see ``repro.avf.ace`` for per-bit classification):

* Only the **vulnerable span** — allocation to last read (issue) — can turn
  a strike into an SDC or DUE event; parity is checked when the entry is
  read, and a value is consumed for the last time at its last read.
* The **Ex-ACE span** (last read to deallocation) and the residency of
  never-read occupants contribute to neither rate.
* Idle entries contribute nothing.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from enum import Enum, unique
from typing import Dict, Optional

from repro.analysis.deadcode import DeadnessAnalysis, DynClass
from repro.avf.ace import bit_weights_for
from repro.isa.encoding import ENCODING_BITS
from repro.pipeline.iq import OccupantKind
from repro.pipeline.result import PipelineResult


@unique
class AccountingPolicy(Enum):
    """How to account occupants that are never read.

    * ``CONSERVATIVE`` (paper-faithful): residency of never-read occupants
      — exposure-squash victims and never-issued wrong-path instructions —
      is charged at the occupant's own classification over its entire stay.
      This mirrors the conservative ACE methodology the paper builds on
      ("if it cannot be proven un-ACE, it is ACE"): squashing then pays off
      by keeping the queue *empty* during miss shadows.
    * ``READ_GATED``: only the allocation-to-last-read window counts.
      Squash victims are provably harmless (the refetch reloads clean bits
      from protected storage), so their residency contributes nothing.
      This is the tighter analysis; the benchmark suite carries an ablation
      comparing the two.
    """

    CONSERVATIVE = "conservative"
    READ_GATED = "read_gated"

#: DynClasses whose false-DUE share the PET buffer can shrink, bucketed by
#: overwrite distance (paper Figure 3's three series).
_PET_TRACKED = (DynClass.FDD_REG, DynClass.FDD_REG_RETURN, DynClass.FDD_MEM)


@dataclass
class OccupancyBreakdown:
    """Bit-cycle totals for one pipeline run's instruction queue."""

    cycles: int
    entries: int
    bits_per_entry: int = ENCODING_BITS
    ace_bit_cycles: float = 0.0
    #: category name -> un-ACE bit-cycles within vulnerable spans.
    unace_bit_cycles: Dict[str, float] = field(default_factory=dict)
    ex_ace_bit_cycles: float = 0.0
    #: Residency of occupants that were never read (squash victims,
    #: never-issued wrong-path instructions).
    unread_bit_cycles: float = 0.0
    resident_bit_cycles: float = 0.0
    #: For FDD classes: overwrite distance (commits; None = never) ->
    #: vulnerable bit-cycles. Drives the PET-buffer residency coverage.
    fdd_distance_weights: Dict[DynClass, Counter] = field(default_factory=dict)

    # -- denominators and fractions -----------------------------------------

    @property
    def total_bit_cycles(self) -> float:
        return float(self.bits_per_entry) * self.entries * self.cycles

    def _frac(self, value: float) -> float:
        total = self.total_bit_cycles
        return value / total if total else 0.0

    @property
    def sdc_avf(self) -> float:
        """AVF of the unprotected queue (paper: ~29 % baseline)."""
        return self._frac(self.ace_bit_cycles)

    @property
    def true_due_avf(self) -> float:
        """With parity, every SDC event becomes a true DUE event."""
        return self.sdc_avf

    @property
    def false_due_avf(self) -> float:
        return self._frac(sum(self.unace_bit_cycles.values()))

    @property
    def due_avf(self) -> float:
        """DUE AVF of the parity-protected queue with no false-DUE tracking."""
        return self.true_due_avf + self.false_due_avf

    def false_due_components(self) -> Dict[str, float]:
        """Per-category false-DUE AVF contributions."""
        return {name: self._frac(v) for name, v in self.unace_bit_cycles.items()}

    @property
    def ex_ace_fraction(self) -> float:
        return self._frac(self.ex_ace_bit_cycles)

    @property
    def idle_fraction(self) -> float:
        return 1.0 - self._frac(self.resident_bit_cycles)

    @property
    def unread_fraction(self) -> float:
        return self._frac(self.unread_bit_cycles)

    def pet_covered_fraction(
        self,
        pet_entries: int,
        classes: tuple = (DynClass.FDD_REG,),
    ) -> float:
        """Residency-weighted share of the given FDD classes whose death is
        provable by a PET buffer of ``pet_entries`` entries.

        A retired instruction is evicted after ``pet_entries`` further
        commits; its overwriter must still be in the buffer, i.e. within
        that distance, for the scan to prove it dead.
        """
        covered = 0.0
        total = 0.0
        for cls in classes:
            weights = self.fdd_distance_weights.get(cls)
            if not weights:
                continue
            for distance, weight in weights.items():
                total += weight
                if distance is not None and distance <= pet_entries:
                    covered += weight
        if total == 0.0:
            return 0.0
        return covered / total


def compute_breakdown(
    result: PipelineResult,
    deadness: Optional[DeadnessAnalysis],
    policy: AccountingPolicy = AccountingPolicy.CONSERVATIVE,
) -> OccupancyBreakdown:
    """Integrate one timing run's intervals against the trace classification.

    ``deadness`` may be None only when the run contains no committed or
    squashed intervals (useful in unit tests of wrong-path behaviour).
    """
    breakdown = OccupancyBreakdown(cycles=result.cycles,
                                   entries=result.iq_entries)
    bits = breakdown.bits_per_entry
    unace = breakdown.unace_bit_cycles
    fdd_weights = breakdown.fdd_distance_weights
    conservative = policy is AccountingPolicy.CONSERVATIVE
    harmless_victims = not conservative

    for interval in result.intervals:
        resident = interval.resident_cycles
        breakdown.resident_bit_cycles += bits * resident
        if interval.issued:
            vulnerable = interval.vulnerable_cycles
            breakdown.ex_ace_bit_cycles += bits * interval.ex_ace_cycles
        elif conservative:
            # Never read, but charged for its whole stay at its own class.
            vulnerable = resident
        else:
            breakdown.unread_bit_cycles += bits * resident
            continue

        if interval.kind is OccupantKind.WRONG_PATH:
            dyn_class = None
        else:
            if deadness is None:
                raise ValueError(
                    "committed/squashed intervals need a DeadnessAnalysis")
            dyn_class = deadness.class_of(interval.seq)
        weights = bit_weights_for(interval, dyn_class,
                                  squash_victims_harmless=harmless_victims)

        if vulnerable <= 0:
            continue
        breakdown.ace_bit_cycles += weights.ace_bits * vulnerable
        if weights.unace_bits:
            contribution = weights.unace_bits * vulnerable
            unace[weights.unace_category] = (
                unace.get(weights.unace_category, 0.0) + contribution)
            if dyn_class in _PET_TRACKED:
                counter = fdd_weights.setdefault(dyn_class, Counter())
                distance = deadness.overwrite_distance.get(interval.seq)
                counter[distance] += contribution
    return breakdown
