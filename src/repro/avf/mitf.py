"""FIT / MTTF / MITF algebra (paper Sections 2 and 3.2).

* FIT — failures per billion device-hours; additive across devices.
* MTTF — mean time to failure; ``MTTF = 1e9 / FIT`` hours.
* MITF — the paper's new metric, Mean Instructions To Failure::

      MITF = committed instructions / errors
           = IPC x frequency x MTTF
           = (frequency / raw error rate) x (IPC / AVF)

  so at fixed frequency and raw rate, MITF is proportional to IPC / AVF:
  an exposure-reduction mechanism pays off exactly when it shrinks AVF by
  a larger factor than it shrinks IPC.
"""

from __future__ import annotations

from dataclasses import dataclass

#: FIT equivalent of a one-year MTBF: 1e9 / (24 * 365).
FIT_PER_MTBF_YEAR = 1e9 / (24.0 * 365.0)

_HOURS_PER_YEAR = 24.0 * 365.0
_SECONDS_PER_HOUR = 3600.0


def mttf_years_from_fit(fit: float) -> float:
    """MTTF in years for an aggregate failure rate of ``fit`` FIT."""
    if fit <= 0:
        raise ValueError("FIT must be positive")
    return (1e9 / fit) / _HOURS_PER_YEAR


def fit_from_mttf_years(years: float) -> float:
    """Aggregate FIT corresponding to an MTTF of ``years``."""
    if years <= 0:
        raise ValueError("MTTF must be positive")
    return 1e9 / (years * _HOURS_PER_YEAR)


def mitf(ipc: float, frequency_hz: float, mttf_years: float) -> float:
    """Mean instructions to failure: IPC x frequency x MTTF.

    The paper's example: IPC 2 at 2 GHz with a 10-year DUE MTTF gives a DUE
    MITF of ~1.3e18 instructions.
    """
    if ipc < 0 or frequency_hz <= 0 or mttf_years <= 0:
        raise ValueError("ipc must be >= 0; frequency and mttf positive")
    seconds = mttf_years * _HOURS_PER_YEAR * _SECONDS_PER_HOUR
    return ipc * frequency_hz * seconds


def mitf_ratio(ipc: float, avf: float) -> float:
    """The IPC/AVF figure of merit Table 1 reports (MITF up to a constant)."""
    if avf <= 0:
        raise ValueError("AVF must be positive to form IPC/AVF")
    return ipc / avf


@dataclass(frozen=True)
class SoftErrorRateModel:
    """Raw circuit-level soft-error rate for one structure.

    ``raw_fit_per_bit`` bundles particle flux, collection efficiency and
    critical charge (paper Section 2); typical published values are around
    1e-3 FIT/bit for contemporary SRAM.
    """

    raw_fit_per_bit: float = 1e-3
    bits: int = 64 * 41  # the modeled 64-entry, 41-bit instruction queue
    frequency_hz: float = 2.5e9

    def __post_init__(self) -> None:
        if self.raw_fit_per_bit <= 0 or self.bits <= 0 or self.frequency_hz <= 0:
            raise ValueError("model parameters must be positive")

    @property
    def raw_fit(self) -> float:
        """Raw FIT of the whole structure (AVF = 1)."""
        return self.raw_fit_per_bit * self.bits

    def fit(self, avf: float) -> float:
        """Effective FIT contribution: raw rate x AVF (paper Eq. Section 2.1)."""
        if not 0.0 <= avf <= 1.0:
            raise ValueError(f"AVF must be in [0, 1], got {avf}")
        return self.raw_fit * avf

    def mttf_years(self, avf: float) -> float:
        return mttf_years_from_fit(self.fit(avf))

    def mitf(self, ipc: float, avf: float) -> float:
        """Absolute MITF for this structure at the given IPC and AVF."""
        return mitf(ipc, self.frequency_hz, self.mttf_years(avf))
