"""AVF-as-a-service: an async query layer over the runtime's stores.

The serving stack has three pieces:

* :mod:`repro.serve.protocol` — the newline-delimited-JSON wire format:
  request validation, canonical query keys, and the result encoders whose
  output is byte-identical to encoding a direct engine call;
* :mod:`repro.serve.server` — the :class:`AvfServer` asyncio service:
  warm keys answered from a bounded LRU in microseconds, cold keys
  deduplicated/coalesced onto exactly one computation on the supervised
  engine and streamed back on completion;
* :mod:`repro.serve.client` — synchronous and asyncio clients, plus the
  failure-tolerant :class:`RemoteStore` that lets the experiment plumbing
  fetch/put timeline entries through a running service.
"""

from repro.serve.client import AsyncServeClient, RemoteStore, ServeClient
from repro.serve.protocol import (
    ProtocolError,
    canonical_dumps,
    encode_benchmark,
    encode_campaign,
    parse_query,
)
from repro.serve.server import AvfServer, ServeConfig

__all__ = [
    "AsyncServeClient",
    "AvfServer",
    "ProtocolError",
    "RemoteStore",
    "ServeClient",
    "ServeConfig",
    "canonical_dumps",
    "encode_benchmark",
    "encode_campaign",
    "parse_query",
]
