"""AVF-as-a-service: an async query layer over the runtime's stores.

The serving stack has five pieces:

* :mod:`repro.serve.protocol` — the newline-delimited-JSON wire format:
  request validation, canonical query keys, and the result encoders whose
  output is byte-identical to encoding a direct engine call;
* :mod:`repro.serve.server` — the :class:`AvfServer` asyncio service:
  warm keys answered from a bounded LRU in microseconds, cold keys
  deduplicated/coalesced onto exactly one computation on the supervised
  engine, bounded admission with load shedding, per-request deadlines,
  and SIGTERM → graceful drain;
* :mod:`repro.serve.client` — synchronous and asyncio clients with
  retry/backoff/deadline discipline, plus the failure-tolerant
  :class:`RemoteStore` that lets the experiment plumbing fetch/put
  timeline entries through a running service;
* :mod:`repro.serve.resilience` — the client-side failure machinery:
  :class:`CircuitBreaker`, :class:`ClientPolicy`, deadline budgets;
* :mod:`repro.serve.chaos` — a seeded deterministic TCP chaos proxy
  (:class:`ChaosProxy`) that damages the wire so the above can be proven
  rather than assumed.
"""

from repro.serve.chaos import ChaosProxy, WireChaosConfig
from repro.serve.client import (
    AsyncServeClient,
    RemoteStore,
    ResilientAsyncClient,
    ServeClient,
    ServeError,
    WireDesync,
)
from repro.serve.protocol import (
    ProtocolError,
    canonical_dumps,
    encode_benchmark,
    encode_campaign,
    parse_query,
)
from repro.serve.resilience import (
    BreakerOpen,
    CircuitBreaker,
    ClientPolicy,
    DeadlineBudget,
)
from repro.serve.server import AvfServer, ServeConfig

__all__ = [
    "AsyncServeClient",
    "AvfServer",
    "BreakerOpen",
    "ChaosProxy",
    "CircuitBreaker",
    "ClientPolicy",
    "DeadlineBudget",
    "ProtocolError",
    "RemoteStore",
    "ResilientAsyncClient",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "WireChaosConfig",
    "WireDesync",
    "canonical_dumps",
    "encode_benchmark",
    "encode_campaign",
    "parse_query",
]
