"""Wire format and key schema for the AVF query service.

Transport is newline-delimited JSON over a stream: each request is one
JSON object on one line, and each response line echoes the request's
``id`` so clients may pipeline and multiplex freely. A request produces
one or two lines:

* ``{"event": "accepted", "status": "cold" | "coalesced", ...}`` — sent
  immediately when the answer requires (or is already waiting on) a
  computation;
* ``{"event": "result", "status": "warm" | "cold", "value": ...}`` — the
  answer itself; ``warm`` means it came straight from the server's LRU;
* ``{"event": "error", "error": {"code", "message"}}`` — a structured
  failure; the connection stays usable.

**Key schema.** Every query normalises to ``(op, profile,
target_instructions, seed, resolved MachineConfig[, campaign config])``.
The machine is resolved *before* keying — profile bubble probability and
trigger folded in, overrides applied — and serialised field-by-field, so
two requests share a key exactly when they denote the same simulation
(the same full-machine rule as the in-process timeline store; trigger-only
keys would alias ablation variants). The canonical key is the sorted,
separator-free JSON dump of that normalised form.

The encoders at the bottom define the service's answer payloads. They are
deliberately the *only* way answers are rendered: the test suite and the
load harness feed direct ``run_benchmark`` / ``run_campaign`` results
through the same encoders and require byte-identical
:func:`canonical_dumps` output, which is what makes "served answer ==
direct engine call" checkable at the byte level.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, replace
from enum import Enum
from typing import Any, Dict, Optional, Tuple

from repro.due.tracking import DEFAULT_PET_ENTRIES, TrackingLevel
from repro.faults.campaign import CampaignConfig, CampaignResult
from repro.pipeline.config import (
    IssuePolicy,
    MachineConfig,
    SquashAction,
    Trigger,
)

#: Stream line-length cap for servers and asyncio clients. Store entries
#: carry base64-pickled interval timelines, which run to megabytes for
#: full-size traces; asyncio's default 64 KiB readline limit would
#: truncate them mid-line.
MAX_LINE_BYTES = 64 * 1024 * 1024

#: Ops that resolve through the compute path (LRU + coalescing).
QUERY_OPS = ("avf", "campaign")
#: Every op the server understands.
ALL_OPS = QUERY_OPS + ("ping", "stats", "health", "store.get", "store.put",
                       "shutdown")

#: Error codes that invite a retry (the condition is transient and the
#: answer, when it comes, will be the same bytes): shed by admission
#: control, refused during drain, interrupted by shutdown, or timed out
#: against a compute deadline. Shared vocabulary between server errors
#: and client retry policy.
RETRYABLE_ERROR_CODES = ("overloaded", "draining", "deadline-exceeded",
                         "shutdown")

#: MachineConfig fields a request may override, with their JSON types.
#: Enum-valued and nested squash knobs are handled separately below.
_MACHINE_SCALARS = {
    "fetch_width": int,
    "issue_width": int,
    "commit_width": int,
    "iq_entries": int,
    "scheduler_window": int,
    "frontend_depth": int,
    "branch_resolve_latency": int,
    "commit_latency": int,
    "alu_latency": int,
    "mul_latency": int,
    "compare_latency": int,
    "mem_ports": int,
    "mul_units": int,
    "branch_units": int,
    "frequency_ghz": float,
    "fetch_bubble_prob": float,
    "fetch_bubble_mean_len": float,
    "warmup_tail_accesses": int,
    "warm_caches": bool,
    "max_cycles": int,
}


class ProtocolError(Exception):
    """A structured, client-visible request failure.

    ``retry_after`` (seconds, 0 = no hint) rides along on transient
    errors — shedding and drain refusals — so clients can pace their
    retries to the server's estimate instead of guessing.
    """

    def __init__(self, code: str, message: str,
                 retry_after: float = 0.0) -> None:
        super().__init__(message)
        self.code = code
        self.message = message
        self.retry_after = retry_after

    def payload(self) -> Dict[str, Any]:
        body: Dict[str, Any] = {"code": self.code, "message": self.message}
        if self.retry_after > 0.0:
            body["retry_after"] = self.retry_after
        return body


@dataclass(frozen=True)
class Query:
    """A validated compute request, ready for the engine."""

    op: str
    key: str
    profile_name: str
    target_instructions: int
    seed: int
    machine: MachineConfig
    campaign: Optional[CampaignConfig]
    normalized: Dict[str, Any]


def canonical_dumps(obj: Any) -> str:
    """The one JSON rendering used for keys and byte-identity checks."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def parse_line(line: bytes) -> Dict[str, Any]:
    """Decode one request line into a JSON object (or raise)."""
    try:
        request = json.loads(line)
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError("bad-json", f"request is not valid JSON: {exc}")
    if not isinstance(request, dict):
        raise ProtocolError("bad-request", "request must be a JSON object")
    return request


def _jsonable(value: Any) -> Any:
    """Dataclasses/enums → plain JSON values, recursively."""
    if isinstance(value, Enum):
        return value.value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {field.name: _jsonable(getattr(value, field.name))
                for field in dataclasses.fields(value)}
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def _require(request: Dict[str, Any], field: str, kind, default=None):
    """Typed field lookup; ``None`` default means the field is required."""
    if field not in request:
        if default is None:
            raise ProtocolError("bad-request",
                                f"missing required field {field!r}")
        return default
    value = request[field]
    if kind is int and isinstance(value, bool):
        raise ProtocolError("bad-request", f"field {field!r} must be an int")
    if kind is float and isinstance(value, int) and not isinstance(value,
                                                                  bool):
        value = float(value)
    if not isinstance(value, kind):
        raise ProtocolError(
            "bad-request",
            f"field {field!r} must be {getattr(kind, '__name__', kind)}")
    return value


def _parse_enum(enum_cls, raw: Any, field: str):
    try:
        return enum_cls(raw)
    except ValueError:
        choices = ", ".join(repr(m.value) for m in enum_cls)
        raise ProtocolError(
            "bad-request",
            f"field {field!r} must be one of {choices} (got {raw!r})")


def _resolve_machine(request: Dict[str, Any], profile) -> MachineConfig:
    """Default machine specialised to the profile + trigger, overridden."""
    trigger = _parse_enum(Trigger, _require(request, "trigger", str, "none"),
                          "trigger")
    overrides = _require(request, "machine", dict, {})
    machine = MachineConfig(fetch_bubble_prob=profile.fetch_bubble_prob)
    machine = replace(machine, squash=replace(machine.squash,
                                              trigger=trigger))
    squash = machine.squash
    fields: Dict[str, Any] = {}
    for name, raw in overrides.items():
        if name in _MACHINE_SCALARS:
            kind = _MACHINE_SCALARS[name]
            if kind is float and isinstance(raw, int) \
                    and not isinstance(raw, bool):
                raw = float(raw)
            if not isinstance(raw, kind) or (kind is not bool
                                             and isinstance(raw, bool)):
                raise ProtocolError(
                    "bad-request",
                    f"machine.{name} must be {kind.__name__}")
            fields[name] = raw
        elif name == "issue_policy":
            fields[name] = _parse_enum(IssuePolicy, raw,
                                       "machine.issue_policy")
        elif name == "squash_action":
            squash = replace(squash, action=_parse_enum(
                SquashAction, raw, "machine.squash_action"))
        elif name == "resume_at_miss_return":
            if not isinstance(raw, bool):
                raise ProtocolError(
                    "bad-request",
                    "machine.resume_at_miss_return must be bool")
            squash = replace(squash, resume_at_miss_return=raw)
        else:
            raise ProtocolError("bad-request",
                                f"unknown machine override {name!r}")
    try:
        return replace(machine, squash=squash, **fields)
    except ValueError as exc:
        raise ProtocolError("bad-request", f"invalid machine config: {exc}")


def _parse_tracking(raw: Any) -> TrackingLevel:
    if isinstance(raw, str):
        try:
            return TrackingLevel[raw]
        except KeyError:
            names = ", ".join(level.name for level in TrackingLevel)
            raise ProtocolError(
                "bad-request",
                f"field 'tracking' must be one of {names} (got {raw!r})")
    if isinstance(raw, int) and not isinstance(raw, bool):
        try:
            return TrackingLevel(raw)
        except ValueError:
            raise ProtocolError("bad-request",
                                f"no tracking level {raw!r}")
    raise ProtocolError("bad-request",
                        "field 'tracking' must be a name or level number")


def parse_query(request: Dict[str, Any]) -> Query:
    """Validate an ``avf``/``campaign`` request into a keyed :class:`Query`.

    Raises :class:`ProtocolError` (never anything else) on any malformed,
    unknown, or out-of-range field, so the server can answer with a
    structured error instead of dying.
    """
    from repro.workloads.spec2000 import get_profile

    op = _require(request, "op", str)
    if op not in QUERY_OPS:
        raise ProtocolError("bad-request",
                            f"op must be one of {QUERY_OPS} (got {op!r})")
    profile_name = _require(request, "profile", str)
    try:
        profile = get_profile(profile_name)
    except KeyError as exc:
        raise ProtocolError("unknown-profile", str(exc))
    target = _require(request, "target_instructions", int, 60_000)
    if target <= 0:
        raise ProtocolError("bad-request",
                            "target_instructions must be positive")
    seed = _require(request, "seed", int, 2004)
    if seed < 0:
        raise ProtocolError("bad-request", "seed must be non-negative")
    machine = _resolve_machine(request, profile)

    campaign = None
    normalized: Dict[str, Any] = {
        "op": op,
        "profile": profile_name,
        "target_instructions": target,
        "seed": seed,
        "machine": _jsonable(machine),
    }
    if op == "campaign":
        trials = _require(request, "trials", int, 400)
        campaign_seed = _require(request, "campaign_seed", int, seed)
        parity = _require(request, "parity", bool, False)
        ecc = _require(request, "ecc", bool, False)
        pet_entries = _require(request, "pet_entries", int,
                               DEFAULT_PET_ENTRIES)
        tracking = _parse_tracking(request.get("tracking", "PARITY_ONLY"))
        try:
            campaign = CampaignConfig(trials=trials, seed=campaign_seed,
                                      parity=parity, tracking=tracking,
                                      pet_entries=pet_entries, ecc=ecc)
        except ValueError as exc:
            raise ProtocolError("bad-request",
                                f"invalid campaign config: {exc}")
        normalized["campaign"] = {
            "trials": trials,
            "seed": campaign_seed,
            "parity": parity,
            "tracking": tracking.name,
            "pet_entries": pet_entries,
            "ecc": ecc,
        }
    return Query(op=op, key=canonical_dumps(normalized),
                 profile_name=profile_name, target_instructions=target,
                 seed=seed, machine=machine, campaign=campaign,
                 normalized=normalized)


# -- answer encoders ---------------------------------------------------------


def encode_benchmark(run) -> Dict[str, Any]:
    """Service payload for one :class:`BenchmarkRun` (AVF/MITF answer)."""
    report = run.report
    payload = {
        "profile": report.name,
        "ipc": report.ipc,
        "cycles": report.cycles,
        "committed": report.committed,
        "sdc_avf": report.sdc_avf,
        "due_avf": report.due_avf,
        "false_due_avf": report.false_due_avf,
        "residency": report.residency_summary(),
        "false_due_components": report.false_due_components(),
        "mitf": {
            "ipc_over_sdc_avf": (report.ipc_over_sdc_avf
                                 if report.sdc_avf > 0 else None),
            "ipc_over_due_avf": (report.ipc_over_due_avf
                                 if report.due_avf > 0 else None),
        },
    }
    return payload


def encode_campaign(result: CampaignResult) -> Dict[str, Any]:
    """Service payload for one :class:`CampaignResult` (injection answer)."""
    return {
        "trials": result.trials,
        "counts": {outcome.value: count
                   for outcome, count in sorted(result.counts.items(),
                                                key=lambda kv: kv[0].value)
                   if count},
        "tracker_misses": result.tracker_misses,
        "sdc_avf_estimate": result.sdc_avf_estimate,
        "due_avf_estimate": result.due_avf_estimate,
        "false_due_estimate": result.false_due_estimate,
    }


def validate_store_key(raw: Any) -> str:
    """A store key must be a sha256 hex digest (the cache's key space)."""
    if not isinstance(raw, str) or len(raw) != 64 \
            or any(c not in "0123456789abcdef" for c in raw):
        raise ProtocolError("bad-request",
                            "store key must be a 64-char sha256 hex digest")
    return raw


def machine_overrides_for(machine: MachineConfig,
                          base: Optional[MachineConfig] = None
                          ) -> Tuple[str, Dict[str, Any]]:
    """Render a resolved machine back into ``(trigger, overrides)`` form.

    Used by clients that hold a :class:`MachineConfig` object (the remote
    timeline store, the load harness) to phrase a request whose resolved
    machine round-trips to exactly ``machine``.
    """
    base = base or MachineConfig(fetch_bubble_prob=machine.fetch_bubble_prob)
    # The server fills fetch_bubble_prob from the profile before applying
    # overrides, so it is pinned unconditionally — the caller's machine
    # must win even when it happens to equal some default.
    overrides: Dict[str, Any] = {
        "fetch_bubble_prob": machine.fetch_bubble_prob}
    for name in _MACHINE_SCALARS:
        if name == "fetch_bubble_prob":
            continue
        value = getattr(machine, name)
        if value != getattr(base, name):
            overrides[name] = value
    if machine.issue_policy != base.issue_policy:
        overrides["issue_policy"] = machine.issue_policy.value
    if machine.squash.action != base.squash.action:
        overrides["squash_action"] = machine.squash.action.value
    if machine.squash.resume_at_miss_return \
            != base.squash.resume_at_miss_return:
        overrides["resume_at_miss_return"] = \
            machine.squash.resume_at_miss_return
    if machine.hierarchy != base.hierarchy:
        raise ProtocolError(
            "bad-request",
            "hierarchy geometry is not overridable over the wire")
    return machine.squash.trigger.value, overrides
