"""The AVF query server.

One asyncio process answers AVF/MITF/false-DUE queries for arbitrary
``(profile, MachineConfig, tracking, campaign)`` tuples:

* **warm** keys come straight from a bounded in-memory LRU (mirroring the
  pipeline's ``_WARM_SNAPSHOTS`` discipline: a hit refreshes the entry,
  inserting past the cap evicts the least-recently-used answer) — no
  engine work, microsecond turnaround;
* **cold** keys are *coalesced*: the first request for a key creates one
  in-flight computation on the supervised engine (``run_benchmark`` /
  ``run_campaign`` under the process's runtime context, in a worker
  thread so the event loop stays responsive) and every concurrent request
  for the same key awaits that single future — N clients, one simulation;
* the engine's own layers stack underneath: the in-process memos, the
  content-addressed result cache, and the persistent timeline store all
  apply, so even an LRU-evicted key usually re-resolves without
  simulating.

The server also exposes the result cache as a remote ``store.get`` /
``store.put`` endpoint, which is what lets CI runs and long campaigns on
other machines share one fleet-wide timeline store
(:class:`repro.serve.client.RemoteStore` is the client side). Store
values are pickles (base64 over the wire) — the service is a trusted
lab-internal component, same trust model as the on-disk cache.

**Overload and shutdown semantics.** Admission is bounded: once
``max_inflight`` cold computations are outstanding, *new* cold keys are
shed with a structured ``overloaded`` error carrying a retry-after hint
(warm hits and coalesced joins are free and always served — shedding
protects the engine, not the LRU). Each query is answered within the
server's ``compute_deadline`` (and/or the request's own ``deadline``
field) or fails with retryable ``deadline-exceeded`` — the computation
itself is never cancelled; it finishes and lands in the LRU for the next
asker. SIGTERM triggers a graceful drain: stop accepting connections,
answer everything in flight, refuse new queries with ``draining``, then
close (exit code 143). The ``health`` op reports live/ready/draining
plus the counters a fleet balancer or circuit breaker wants to see.

Every request ticks both the server's own :attr:`AvfServer.stats`
counters (authoritative, queryable via the ``stats`` op) and the runtime
telemetry, so ``repro serve`` prints the standard footer on shutdown.
"""

from __future__ import annotations

import asyncio
import base64
import os
import pickle
import signal
from collections import Counter, OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.runtime.cache import MISS
from repro.runtime.context import get_runtime
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    Query,
    canonical_dumps,
    encode_benchmark,
    encode_campaign,
    parse_line,
    parse_query,
    validate_store_key,
)

#: Default knobs (each has a ``REPRO_SERVE_*`` environment twin).
DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8787
DEFAULT_LRU_ENTRIES = 256
DEFAULT_COMPUTE_WORKERS = 1
#: Cold computations admitted before new cold keys are shed (0 = never).
DEFAULT_MAX_INFLIGHT = 64
#: Per-query answer deadline, in seconds (0 = none).
DEFAULT_COMPUTE_DEADLINE = 0.0
#: Retry-after hint attached to shed/draining errors, in seconds.
DEFAULT_RETRY_AFTER = 0.25
#: SIGTERM drain exit code (128 + SIGTERM), surfaced by ``repro serve``.
DRAIN_EXIT_CODE = 143


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if not raw:
        return default
    try:
        return int(raw)
    except ValueError:
        raise ValueError(f"{name} must be an integer (got {raw!r})")


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name)
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError:
        raise ValueError(f"{name} must be a number (got {raw!r})")


@dataclass(frozen=True)
class ServeConfig:
    """How one :class:`AvfServer` listens and bounds its memory."""

    host: str = DEFAULT_HOST
    port: int = DEFAULT_PORT
    #: Answered-key LRU capacity; 0 disables warm serving entirely.
    lru_entries: int = DEFAULT_LRU_ENTRIES
    #: Engine threads draining cold keys. The default of 1 serialises
    #: simulations (the engine's in-process memos are not contended);
    #: the engine itself still fans each computation out over the
    #: runtime context's ``jobs`` worker processes.
    compute_workers: int = DEFAULT_COMPUTE_WORKERS
    #: Cold computations outstanding before new cold keys are shed with
    #: ``overloaded``; 0 disables shedding. Warm hits and coalesced
    #: joins are never shed.
    max_inflight: int = DEFAULT_MAX_INFLIGHT
    #: Seconds a query may wait for its answer before the *request*
    #: fails with ``deadline-exceeded`` (the computation continues and
    #: lands in the LRU); 0 disables the server-side deadline.
    compute_deadline: float = DEFAULT_COMPUTE_DEADLINE
    #: Retry-after hint, in seconds, on shed/draining errors.
    retry_after: float = DEFAULT_RETRY_AFTER

    def __post_init__(self) -> None:
        if self.lru_entries < 0:
            raise ValueError("lru_entries must be >= 0")
        if self.compute_workers < 1:
            raise ValueError("compute_workers must be >= 1")
        if self.max_inflight < 0:
            raise ValueError("max_inflight must be >= 0")
        if self.compute_deadline < 0:
            raise ValueError("compute_deadline must be >= 0")
        if self.retry_after < 0:
            raise ValueError("retry_after must be >= 0")

    @classmethod
    def from_env(cls, **overrides: Any) -> "ServeConfig":
        """Defaults from ``REPRO_SERVE_*`` knobs, then explicit overrides."""
        values = {
            "host": os.environ.get("REPRO_SERVE_HOST", DEFAULT_HOST),
            "port": _env_int("REPRO_SERVE_PORT", DEFAULT_PORT),
            "lru_entries": _env_int("REPRO_SERVE_LRU", DEFAULT_LRU_ENTRIES),
            "compute_workers": _env_int("REPRO_SERVE_WORKERS",
                                        DEFAULT_COMPUTE_WORKERS),
            "max_inflight": _env_int("REPRO_SERVE_MAX_INFLIGHT",
                                     DEFAULT_MAX_INFLIGHT),
            "compute_deadline": _env_float("REPRO_SERVE_DEADLINE",
                                           DEFAULT_COMPUTE_DEADLINE),
            "retry_after": _env_float("REPRO_SERVE_RETRY_AFTER",
                                      DEFAULT_RETRY_AFTER),
        }
        values.update({k: v for k, v in overrides.items() if v is not None})
        return cls(**values)


def resolve_query(query: Query) -> Dict[str, Any]:
    """Answer one query on the engine (the default cold-path resolver).

    Runs in a compute thread. Goes through the exact entry points a
    direct caller would use, so a served answer is the same object graph
    a local ``run_benchmark``/``run_campaign`` call produces — the
    encoders then guarantee byte-identical payloads.
    """
    from repro.experiments.common import ExperimentSettings, run_benchmark
    from repro.faults.campaign import run_campaign
    from repro.workloads.spec2000 import get_profile

    settings = ExperimentSettings(
        target_instructions=query.target_instructions, seed=query.seed)
    run = run_benchmark(get_profile(query.profile_name), settings,
                        machine=query.machine)
    if query.op == "avf":
        return encode_benchmark(run)
    result = run_campaign(run.program, run.execution, run.pipeline,
                          query.campaign)
    return encode_campaign(result)


class AvfServer:
    """Asyncio NDJSON query server over the runtime's stores."""

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        resolver: Optional[Callable[[Query], Dict[str, Any]]] = None,
    ) -> None:
        self.config = config or ServeConfig()
        self.resolver = resolver or resolve_query
        self.stats: Counter = Counter()
        self._lru: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._inflight: Dict[str, asyncio.Future] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._stopped: Optional[asyncio.Event] = None
        self._connections: set = set()
        self._requests: set = set()
        self._draining = False
        self.port: Optional[int] = None

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        """Bind and begin accepting connections (port 0 picks a free one)."""
        self._stopped = asyncio.Event()
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.compute_workers,
            thread_name_prefix="repro-serve")
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port,
            limit=MAX_LINE_BYTES)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Drain (or cancel) connection handlers so loop teardown never
        # finds them mid-await.
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
            self._connections.clear()
        for future in list(self._inflight.values()):
            if not future.done():
                future.cancel()
        self._inflight.clear()
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
        if self._stopped is not None:
            self._stopped.set()

    async def drain(self) -> None:
        """Graceful shutdown: answer what is in flight, refuse the rest.

        Stops accepting new connections immediately, marks the server
        draining (new queries on existing connections get a retryable
        ``draining`` error), waits for every already-admitted request to
        be *answered* — computations are never abandoned mid-flight —
        then stops. Idempotent; a second call just waits alongside.
        """
        if self._draining:
            await self.wait_stopped()
            return
        self._draining = True
        self.stats["serve_drains"] += 1
        get_runtime().telemetry.increment("serve_drains")
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Admitted requests finish and write their answers; a client may
        # race a new request in while we wait, so re-snapshot until dry.
        drained = 0
        while True:
            pending = [task for task in self._requests if not task.done()]
            if not pending:
                break
            drained += len(pending)
            await asyncio.gather(*pending, return_exceptions=True)
        self.stats["serve_drained_answers"] += drained
        await self.stop()

    async def wait_stopped(self) -> None:
        """Block until :meth:`stop` (or a ``shutdown`` request) completes."""
        assert self._stopped is not None, "server was never started"
        await self._stopped.wait()

    @property
    def draining(self) -> bool:
        return self._draining

    # -- connection handling ------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        """One client: read request lines, answer each in its own task.

        Per-request tasks let a connection pipeline: a warm query behind
        a cold one answers immediately. A write lock keeps response lines
        atomic. A client that disconnects mid-stream only breaks its own
        writes — in-flight computations it triggered run to completion
        (and land in the LRU for the next asker).
        """
        lock = asyncio.Lock()
        tasks = []
        me = asyncio.current_task()
        if me is not None:
            self._connections.add(me)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, asyncio.IncompleteReadError):
                    break
                except ValueError:
                    # Line past MAX_LINE_BYTES: the stream is desynced,
                    # so answer structurally and drop the connection.
                    self.stats["serve_errors"] += 1
                    get_runtime().telemetry.increment("serve_errors")
                    await self._send(writer, lock, {
                        "id": None, "event": "error", "ok": False,
                        "error": {"code": "line-too-long",
                                  "message": "request line exceeds "
                                             f"{MAX_LINE_BYTES} bytes"}})
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                task = asyncio.ensure_future(
                    self._handle_line(line, writer, lock))
                tasks.append(task)
                self._requests.add(task)
                task.add_done_callback(self._requests.discard)
        except asyncio.CancelledError:
            pass  # server stopping: fall through to cleanup
        finally:
            self._connections.discard(me)
            if tasks:
                for task in tasks:
                    task.cancel()
                await asyncio.gather(*tasks, return_exceptions=True)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _send(self, writer: asyncio.StreamWriter, lock: asyncio.Lock,
                    payload: Dict[str, Any]) -> bool:
        """Write one response line; a dead client is not an error."""
        data = (canonical_dumps(payload) + "\n").encode()
        try:
            async with lock:
                writer.write(data)
                await writer.drain()
        except (ConnectionError, OSError, RuntimeError):
            self.stats["serve_client_disconnects"] += 1
            return False
        return True

    async def _handle_line(self, line: bytes, writer: asyncio.StreamWriter,
                           lock: asyncio.Lock) -> None:
        request_id = None
        telemetry = get_runtime().telemetry
        self.stats["serve_requests"] += 1
        telemetry.increment("serve_requests")
        try:
            request = parse_line(line)
            request_id = request.get("id")
            op = request.get("op")
            if op in ("avf", "campaign"):
                await self._handle_query(request, request_id, writer, lock)
            elif op == "ping":
                await self._send(writer, lock, {
                    "id": request_id, "event": "result", "ok": True,
                    "status": "warm", "value": "pong"})
            elif op == "stats":
                await self._handle_stats(request_id, writer, lock)
            elif op == "health":
                await self._handle_health(request_id, writer, lock)
            elif op == "store.get":
                await self._handle_store_get(request, request_id, writer,
                                             lock)
            elif op == "store.put":
                await self._handle_store_put(request, request_id, writer,
                                             lock)
            elif op == "shutdown":
                await self._send(writer, lock, {
                    "id": request_id, "event": "result", "ok": True,
                    "status": "warm", "value": "stopping"})
                asyncio.ensure_future(self.stop())
            else:
                raise ProtocolError(
                    "unknown-op", f"unknown op {op!r}; this server speaks "
                    "avf, campaign, ping, stats, health, store.get, "
                    "store.put, shutdown")
        except ProtocolError as exc:
            self.stats["serve_errors"] += 1
            telemetry.increment("serve_errors")
            await self._send(writer, lock, {
                "id": request_id, "event": "error", "ok": False,
                "error": exc.payload()})

    # -- the query path: LRU, coalescing, compute ---------------------------

    def _answer_deadline(self, request: Dict[str, Any]) -> Optional[float]:
        """Effective per-query deadline: min of server's and request's."""
        raw = request.get("deadline")
        client = None
        if isinstance(raw, (int, float)) and not isinstance(raw, bool) \
                and raw > 0:
            client = float(raw)
        server = self.config.compute_deadline or None
        if client is None:
            return server
        if server is None:
            return client
        return min(client, server)

    async def _handle_query(self, request: Dict[str, Any], request_id,
                            writer: asyncio.StreamWriter,
                            lock: asyncio.Lock) -> None:
        telemetry = get_runtime().telemetry
        query = parse_query(request)
        key = query.key
        cached = self._lru.get(key)
        if cached is not None:
            self._lru.move_to_end(key)
            self.stats["serve_warm_hits"] += 1
            telemetry.increment("serve_warm_hits")
            await self._send(writer, lock, {
                "id": request_id, "event": "result", "ok": True,
                "status": "warm", "key": key, "value": cached})
            return
        if self._draining:
            # Warm answers above stay free during drain; new work does
            # not start.
            self.stats["serve_drain_refusals"] += 1
            telemetry.increment("serve_drain_refusals")
            raise ProtocolError("draining",
                                "server is draining; retry another replica",
                                retry_after=self.config.retry_after)
        future = self._inflight.get(key)
        if future is not None:
            self.stats["serve_coalesced"] += 1
            telemetry.increment("serve_coalesced")
            await self._send(writer, lock, {
                "id": request_id, "event": "accepted", "ok": True,
                "status": "coalesced", "key": key})
        else:
            if self.config.max_inflight \
                    and len(self._inflight) >= self.config.max_inflight:
                # Admission control: shedding protects the engine. The
                # hint scales with how far past the bound we are.
                self.stats["serve_shed_requests"] += 1
                telemetry.increment("serve_shed_requests")
                raise ProtocolError(
                    "overloaded",
                    f"{len(self._inflight)} computations in flight "
                    f"(bound {self.config.max_inflight}); retry later",
                    retry_after=self.config.retry_after)
            future = asyncio.get_running_loop().create_future()
            self._inflight[key] = future
            self.stats["serve_queue_peak"] = max(
                self.stats["serve_queue_peak"], len(self._inflight))
            asyncio.ensure_future(self._compute(query, future))
            await self._send(writer, lock, {
                "id": request_id, "event": "accepted", "ok": True,
                "status": "cold", "key": key})
        deadline = self._answer_deadline(request)
        try:
            value = await asyncio.wait_for(asyncio.shield(future), deadline)
        except asyncio.TimeoutError as exc:
            if deadline is None:
                # No deadline was armed: the *compute* raised a timeout.
                raise ProtocolError(
                    "compute-failed", f"{type(exc).__name__}: {exc}")
            # The request fails; the computation keeps running and will
            # land in the LRU, so the retry is warm.
            self.stats["serve_deadline_expirations"] += 1
            telemetry.increment("serve_deadline_expirations")
            raise ProtocolError(
                "deadline-exceeded",
                f"no answer within {deadline}s (computation continues)",
                retry_after=self.config.retry_after)
        except asyncio.CancelledError:
            raise ProtocolError("shutdown", "server stopped mid-computation")
        except Exception as exc:  # surfaced per-request, server survives
            raise ProtocolError(
                "compute-failed", f"{type(exc).__name__}: {exc}")
        await self._send(writer, lock, {
            "id": request_id, "event": "result", "ok": True,
            "status": "cold", "key": key, "value": value})

    async def _compute(self, query: Query, future: asyncio.Future) -> None:
        """Run the resolver in a compute thread; exactly once per key."""
        telemetry = get_runtime().telemetry
        self.stats["serve_cold_computes"] += 1
        telemetry.increment("serve_cold_computes")
        loop = asyncio.get_running_loop()
        try:
            value = await loop.run_in_executor(
                self._executor, self.resolver, query)
        except Exception as exc:
            self.stats["serve_compute_failures"] += 1
            telemetry.increment("serve_compute_failures")
            if not future.done():
                future.set_exception(exc)
        else:
            self._remember(query.key, value)
            if not future.done():
                future.set_result(value)
        finally:
            self._inflight.pop(query.key, None)

    def _remember(self, key: str, value: Dict[str, Any]) -> None:
        """Insert into the LRU, evicting the least-recently-used answer."""
        if self.config.lru_entries == 0:
            return
        telemetry = get_runtime().telemetry
        while len(self._lru) >= self.config.lru_entries:
            self._lru.popitem(last=False)
            self.stats["serve_lru_evictions"] += 1
            telemetry.increment("serve_lru_evictions")
        self._lru[key] = value

    # -- auxiliary ops ------------------------------------------------------

    async def _handle_stats(self, request_id, writer: asyncio.StreamWriter,
                            lock: asyncio.Lock) -> None:
        snapshot = dict(self.stats)
        snapshot["lru_entries"] = len(self._lru)
        snapshot["inflight"] = len(self._inflight)
        snapshot["draining"] = self._draining
        await self._send(writer, lock, {
            "id": request_id, "event": "result", "ok": True,
            "status": "warm", "value": snapshot})

    async def _handle_health(self, request_id, writer: asyncio.StreamWriter,
                             lock: asyncio.Lock) -> None:
        """Live/ready/draining plus the stats a balancer/breaker wants."""
        inflight = len(self._inflight)
        shed_bound = self.config.max_inflight
        value = {
            "live": True,
            "ready": (not self._draining
                      and not (shed_bound and inflight >= shed_bound)),
            "draining": self._draining,
            "inflight": inflight,
            "max_inflight": shed_bound,
            "lru_entries": len(self._lru),
            "lru_capacity": self.config.lru_entries,
            "compute_deadline": self.config.compute_deadline,
            "counters": {
                name: self.stats[name]
                for name in ("serve_requests", "serve_warm_hits",
                             "serve_cold_computes", "serve_coalesced",
                             "serve_shed_requests",
                             "serve_deadline_expirations",
                             "serve_drain_refusals", "serve_errors",
                             "serve_compute_failures")
                if name in self.stats
            },
        }
        await self._send(writer, lock, {
            "id": request_id, "event": "result", "ok": True,
            "status": "warm", "value": value})

    async def _handle_store_get(self, request: Dict[str, Any], request_id,
                                writer: asyncio.StreamWriter,
                                lock: asyncio.Lock) -> None:
        key = validate_store_key(request.get("key"))
        cache = get_runtime().cache
        if cache is None:
            raise ProtocolError("no-store",
                                "this server has no persistent cache "
                                "attached (start it with --cache-dir)")
        telemetry = get_runtime().telemetry
        value = cache.get(key)
        if value is MISS:
            self.stats["serve_store_misses"] += 1
            telemetry.increment("serve_store_misses")
            await self._send(writer, lock, {
                "id": request_id, "event": "result", "ok": True,
                "status": "warm", "key": key, "found": False})
            return
        self.stats["serve_store_hits"] += 1
        telemetry.increment("serve_store_hits")
        encoded = base64.b64encode(
            pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)).decode()
        await self._send(writer, lock, {
            "id": request_id, "event": "result", "ok": True,
            "status": "warm", "key": key, "found": True,
            "value_b64": encoded})

    async def _handle_store_put(self, request: Dict[str, Any], request_id,
                                writer: asyncio.StreamWriter,
                                lock: asyncio.Lock) -> None:
        key = validate_store_key(request.get("key"))
        raw = request.get("value_b64")
        if not isinstance(raw, str):
            raise ProtocolError("bad-request",
                                "store.put requires a value_b64 string")
        cache = get_runtime().cache
        if cache is None:
            raise ProtocolError("no-store",
                                "this server has no persistent cache "
                                "attached (start it with --cache-dir)")
        try:
            value = pickle.loads(base64.b64decode(raw, validate=True))
        except Exception as exc:
            raise ProtocolError("bad-request",
                                f"undecodable store value: {exc}")
        stored = cache.put(key, value)
        telemetry = get_runtime().telemetry
        self.stats["serve_store_puts"] += 1
        telemetry.increment("serve_store_puts")
        await self._send(writer, lock, {
            "id": request_id, "event": "result", "ok": True,
            "status": "warm", "key": key, "stored": stored})


async def _serve_until_stopped(config: ServeConfig,
                               announce: Callable[[str], None]) -> int:
    server = AvfServer(config)
    await server.start()
    loop = asyncio.get_running_loop()
    terminated = False

    def _on_sigterm() -> None:
        nonlocal terminated
        terminated = True
        announce("[repro serve] SIGTERM: draining (answering in-flight "
                 "requests, refusing new work)")
        asyncio.ensure_future(server.drain())

    # Install the handler *before* announcing readiness: supervisors may
    # SIGTERM the instant they see the listening line.
    try:
        loop.add_signal_handler(signal.SIGTERM, _on_sigterm)
    except (NotImplementedError, RuntimeError):
        pass  # platform without loop signal handlers: Ctrl-C still works
    announce(f"[repro serve] listening on {config.host}:{server.port} "
             f"(lru={config.lru_entries}, "
             f"workers={config.compute_workers}, "
             f"max_inflight={config.max_inflight})")
    try:
        await server.wait_stopped()
    finally:
        try:
            loop.remove_signal_handler(signal.SIGTERM)
        except (NotImplementedError, RuntimeError, ValueError):
            pass
        await server.stop()
    return DRAIN_EXIT_CODE if terminated else 0


def serve_forever(config: ServeConfig,
                  announce: Callable[[str], None] = print) -> int:
    """Blocking entry point for ``repro serve``.

    Returns the process exit code: 0 after a clean stop (Ctrl-C or a
    wire ``shutdown``), :data:`DRAIN_EXIT_CODE` (143 = 128+SIGTERM)
    after a SIGTERM-triggered graceful drain — distinct so supervisors
    can tell a commanded drain from a normal exit.
    """
    try:
        return asyncio.run(_serve_until_stopped(config, announce))
    except KeyboardInterrupt:
        return 0
