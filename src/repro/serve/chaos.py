"""Deterministic wire-level chaos for the AVF query service.

PR 2's :mod:`repro.runtime.chaos` injects faults into the *campaign
runtime* (killed workers, poisoned trials, garbled files) so the
supervision layer's recovery paths are proven rather than assumed. This
module does the same to the *network*: a TCP proxy sits between a real
client and a real server and damages the byte stream per a schedule
derived from a seed — dropped lines, delays, connection resets, lines
truncated mid-frame, and garbled bytes.

Every decision is a pure function of ``(chaos seed, direction,
connection index, line index)`` via :func:`repro.util.rng.derive_seed`,
so a chaos run replays: the same seed resets the same connections and
garbles the same lines on every invocation (given the same client
behaviour — concurrent clients race for connection indices, which is
fine because the suites assert *outcomes*, not fault order).

**Why garbling can never fabricate an answer.** Damaged bytes are
stamped with ``0xFF``, which is not valid UTF-8 in any position — a
garbled line is structurally guaranteed to fail JSON decoding on
whichever side receives it. The server answers an unattributable
``bad-json`` error; the client treats either signal as wire desync and
retries over a fresh connection. There is no schedule of injected
faults under which damage parses into a plausible-but-wrong payload,
which is what the differential suite then demonstrates end to end.
"""

from __future__ import annotations

import asyncio
import itertools
from collections import Counter
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.serve.protocol import MAX_LINE_BYTES
from repro.util.rng import DeterministicRng, derive_seed

#: Every recognised wire failure mode.
WIRE_CHAOS_MODES = (
    "drop",      # swallow a line entirely (the sender waits, times out)
    "delay",     # hold a line for delay_seconds before forwarding
    "reset",     # abort both sides of the connection mid-stream
    "truncate",  # forward half a line (no newline), then abort
    "garble",    # stamp bytes with 0xFF (never valid UTF-8) and forward
)


@dataclass(frozen=True)
class WireChaosConfig:
    """Which wire faults are armed, and how aggressively.

    Probabilities are per forwarded line and mutually exclusive (one
    draw per line picks at most one fault), so their sum must stay
    within [0, 1].
    """

    modes: Tuple[str, ...] = WIRE_CHAOS_MODES
    seed: int = 2004
    drop_prob: float = 0.02
    delay_prob: float = 0.08
    delay_seconds: float = 0.005
    reset_prob: float = 0.04
    truncate_prob: float = 0.03
    garble_prob: float = 0.05

    def __post_init__(self) -> None:
        unknown = [m for m in self.modes if m not in WIRE_CHAOS_MODES]
        if unknown:
            raise ValueError(
                f"unknown wire chaos mode(s) {', '.join(sorted(unknown))}; "
                f"choose from {', '.join(WIRE_CHAOS_MODES)}")
        if self.seed < 0:
            raise ValueError("chaos seed must be non-negative")
        for name in ("drop_prob", "delay_prob", "reset_prob",
                     "truncate_prob", "garble_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        total = sum(prob for _, prob in self._armed())
        if total > 1.0:
            raise ValueError(
                f"armed probabilities sum to {total}, must be <= 1")
        if self.delay_seconds < 0.0:
            raise ValueError("delay_seconds must be non-negative")

    def enabled(self, mode: str) -> bool:
        return mode in self.modes

    def _armed(self) -> Tuple[Tuple[str, float], ...]:
        return tuple((mode, getattr(self, f"{mode}_prob"))
                     for mode in WIRE_CHAOS_MODES if mode in self.modes)


class ChaosProxy:
    """A seeded TCP chaos proxy in front of one upstream server.

    Listens on ``host:port`` (port 0 picks a free one, published as
    :attr:`port` after :meth:`start`) and forwards line-by-line to
    ``upstream``. Faults are applied per the config's deterministic
    schedule in both directions (``up`` = client→server requests,
    ``down`` = server→client responses). :attr:`counters` records every
    decision (``wire_pass``, ``wire_drop``, …) so tests can assert the
    storm actually stormed.
    """

    def __init__(self, upstream: Tuple[str, int], config: WireChaosConfig,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.upstream = upstream
        self.config = config
        self.host = host
        self.port: Optional[int] = port or None
        self.counters: Counter = Counter()
        self._listen_port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._ids = itertools.count(1)
        self._pumps: set = set()

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self._listen_port,
            limit=MAX_LINE_BYTES)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._pumps):
            task.cancel()
        if self._pumps:
            await asyncio.gather(*self._pumps, return_exceptions=True)
            self._pumps.clear()

    async def __aenter__(self) -> "ChaosProxy":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- the fault schedule -------------------------------------------------

    def decide(self, direction: str, connection: int,
               line_index: int) -> Tuple[str, DeterministicRng]:
        """One deterministic draw: which fault (if any) hits this line."""
        rng = DeterministicRng(derive_seed(
            self.config.seed, "wire", direction, connection, line_index))
        draw = rng.random()
        for mode, prob in self.config._armed():
            draw -= prob
            if draw < 0.0:
                return mode, rng
        return "pass", rng

    @staticmethod
    def garble_line(line: bytes, rng: DeterministicRng) -> bytes:
        """Stamp 1–8 payload bytes with 0xFF (never valid UTF-8).

        The trailing newline is preserved so framing survives and the
        damage is confined to exactly one request/response — the
        receiver must *detect* it, not resynchronise around it.
        """
        body = bytearray(line[:-1] if line.endswith(b"\n") else line)
        if not body:
            return line
        for _ in range(1 + rng.randint(0, 7)):
            body[rng.randint(0, len(body) - 1)] = 0xFF
        return bytes(body) + (b"\n" if line.endswith(b"\n") else b"")

    # -- plumbing -----------------------------------------------------------

    @staticmethod
    def _abort(writer: Optional[asyncio.StreamWriter]) -> None:
        if writer is None:
            return
        try:
            writer.transport.abort()
        except (AttributeError, ConnectionError, OSError, RuntimeError):
            pass

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        connection = next(self._ids)
        self.counters["wire_connections"] += 1
        try:
            up_reader, up_writer = await asyncio.open_connection(
                *self.upstream, limit=MAX_LINE_BYTES)
        except OSError:
            self.counters["wire_upstream_refused"] += 1
            self._abort(writer)
            return
        pumps = [
            asyncio.ensure_future(self._pump(
                reader, up_writer, writer, "up", connection)),
            asyncio.ensure_future(self._pump(
                up_reader, writer, up_writer, "down", connection)),
        ]
        for task in pumps:
            self._pumps.add(task)
            task.add_done_callback(self._pumps.discard)
        try:
            await asyncio.gather(*pumps, return_exceptions=True)
        finally:
            for side in (writer, up_writer):
                try:
                    side.close()
                except (ConnectionError, OSError, RuntimeError):
                    pass

    async def _pump(self, reader: asyncio.StreamReader,
                    writer: asyncio.StreamWriter,
                    back_writer: asyncio.StreamWriter,
                    direction: str, connection: int) -> None:
        """Forward one direction line-by-line, applying the schedule."""
        line_index = 0
        try:
            while True:
                line = await reader.readline()
                if not line:
                    # Clean EOF: half-close forward so it propagates.
                    try:
                        if writer.can_write_eof():
                            writer.write_eof()
                    except (ConnectionError, OSError, RuntimeError):
                        pass
                    return
                action, rng = self.decide(direction, connection, line_index)
                line_index += 1
                self.counters[f"wire_{action}"] += 1
                if action == "drop":
                    continue
                if action == "reset":
                    self._abort(writer)
                    self._abort(back_writer)
                    return
                if action == "truncate":
                    writer.write(line[: max(1, len(line) // 2)])
                    try:
                        await writer.drain()
                    except (ConnectionError, OSError):
                        pass
                    self._abort(writer)
                    self._abort(back_writer)
                    return
                if action == "delay":
                    await asyncio.sleep(self.config.delay_seconds)
                elif action == "garble":
                    line = self.garble_line(line, rng)
                writer.write(line)
                await writer.drain()
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            self._abort(writer)
        except ValueError:
            # A line past the limit: the stream cannot be re-framed.
            self.counters["wire_overlong"] += 1
            self._abort(writer)
            self._abort(back_writer)
        except asyncio.CancelledError:
            self._abort(writer)
            raise
