"""Client-side failure engineering for the AVF query service.

PR 6 gave the serve path one blind reconnect and fixed timeouts; this
module gives it the same discipline the campaign runtime got in PR 2 —
failures that merely degrade availability are absorbed, counted, and
reported, while failures that could corrupt answers are structurally
impossible (every retry re-issues an idempotent request and re-validates
the framed response; a garbled line can never be mistaken for an answer).

Three pieces:

* :class:`ClientPolicy` — how hard one logical request fights: retry
  count, exponential backoff with *deterministic* jitter (delegating to
  :class:`repro.runtime.resilience.RetryPolicy`, the exact machinery the
  process-pool supervisor uses), and a wall-clock **deadline budget**
  that caps the total time spent across all attempts, connects, and
  backoff sleeps;
* :class:`DeadlineBudget` — the running remainder of that budget, used
  to clip every per-attempt socket timeout so retries can never stretch
  a request past its cap;
* :class:`CircuitBreaker` — the classic closed → open → half-open
  machine over *transport* failures. After ``threshold`` consecutive
  failures the breaker opens and every subsequent call is refused
  locally (:class:`BreakerOpen`) without paying the connect tax; after
  ``reset_timeout`` one probe is let through, and its outcome closes or
  re-opens the circuit. Structured server errors never trip the breaker
  — a server that answers, even with an error, is alive.

Environment knobs (validated in the same style as the server's
``REPRO_SERVE_*`` parsing): ``REPRO_SERVICE_TIMEOUT`` (per-attempt
socket timeout for ``--service`` clients), ``REPRO_SERVICE_RETRIES``,
``REPRO_SERVICE_BREAKER_THRESHOLD``, ``REPRO_SERVICE_BREAKER_RESET``.
"""

from __future__ import annotations

import os
import threading
import time
from collections import Counter
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.runtime.resilience import RetryPolicy

#: Per-attempt socket timeout for interactive clients (``ServeClient``).
DEFAULT_CLIENT_TIMEOUT = 300.0
#: Per-attempt socket timeout for the experiment-plumbing store client.
DEFAULT_STORE_TIMEOUT = 60.0
#: Consecutive transport failures before the breaker opens.
DEFAULT_BREAKER_THRESHOLD = 3
#: Seconds an open breaker waits before letting one probe through.
DEFAULT_BREAKER_RESET = 30.0
#: Retry budget (attempts after the first) for one logical request.
DEFAULT_CLIENT_RETRIES = 2


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name)
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError:
        raise ValueError(f"{name} must be a number (got {raw!r})")


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if not raw:
        return default
    try:
        return int(raw)
    except ValueError:
        raise ValueError(f"{name} must be an integer (got {raw!r})")


def service_timeout(default: float) -> float:
    """Per-attempt socket timeout: ``REPRO_SERVICE_TIMEOUT`` or ``default``."""
    value = _env_float("REPRO_SERVICE_TIMEOUT", default)
    if value <= 0:
        raise ValueError(
            f"REPRO_SERVICE_TIMEOUT must be positive (got {value!r})")
    return value


def service_retries(default: int = DEFAULT_CLIENT_RETRIES) -> int:
    """Retry budget: ``REPRO_SERVICE_RETRIES`` or ``default``."""
    value = _env_int("REPRO_SERVICE_RETRIES", default)
    if value < 0:
        raise ValueError(
            f"REPRO_SERVICE_RETRIES must be non-negative (got {value!r})")
    return value


@dataclass(frozen=True)
class ClientPolicy:
    """Retry/backoff/deadline budget for one logical service request.

    Backoff delays come from :meth:`RetryPolicy.backoff_delay`, so the
    jitter stream is a pure function of ``(label, request id, attempt)``
    — a retry storm de-correlates across clients and requests, yet any
    single run replays exactly.
    """

    #: Additional attempts after the first (0 = fail fast).
    retries: int = DEFAULT_CLIENT_RETRIES
    #: First-retry backoff delay, in seconds; doubles per attempt.
    backoff_base: float = 0.05
    #: Backoff ceiling, in seconds.
    backoff_cap: float = 2.0
    #: Fraction of the delay randomised (deterministically).
    jitter: float = 0.5
    #: Wall-clock cap, in seconds, on the *total* time one request may
    #: spend across every attempt, connect, and backoff sleep
    #: (None = only the per-attempt timeouts bound it).
    deadline: Optional[float] = None

    def __post_init__(self) -> None:
        # RetryPolicy validates the shared fields; deadline is ours.
        self._retry_policy()
        if self.deadline is not None and self.deadline <= 0.0:
            raise ValueError("deadline must be positive")

    def _retry_policy(self) -> RetryPolicy:
        return RetryPolicy(retries=self.retries,
                           backoff_base=self.backoff_base,
                           backoff_cap=self.backoff_cap,
                           jitter=self.jitter)

    def backoff_delay(self, label: str, index: int, attempt: int) -> float:
        """Deterministic delay before retry ``attempt`` (1-based)."""
        return self._retry_policy().backoff_delay(label, index, attempt)

    @classmethod
    def from_env(cls, **overrides) -> "ClientPolicy":
        values = {"retries": service_retries()}
        values.update({k: v for k, v in overrides.items() if v is not None})
        return cls(**values)


class DeadlineBudget:
    """The running remainder of one request's wall-clock budget."""

    def __init__(self, seconds: Optional[float],
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.seconds = seconds
        self._clock = clock
        self._expires = None if seconds is None else clock() + seconds

    def remaining(self) -> Optional[float]:
        """Seconds left, or None when the budget is unbounded."""
        if self._expires is None:
            return None
        return max(0.0, self._expires - self._clock())

    def expired(self) -> bool:
        remaining = self.remaining()
        return remaining is not None and remaining <= 0.0

    def clip(self, timeout: Optional[float]) -> Optional[float]:
        """Bound a per-attempt timeout by what is left of the budget."""
        remaining = self.remaining()
        if remaining is None:
            return timeout
        if timeout is None:
            return remaining
        return min(timeout, remaining)


class BreakerOpen(ConnectionError):
    """Refused locally: the circuit breaker considers the service dead."""

    def __init__(self, message: str, retry_in: float = 0.0) -> None:
        super().__init__(message)
        #: Seconds until the breaker will admit a half-open probe.
        self.retry_in = retry_in


#: Breaker states, as exposed by :attr:`CircuitBreaker.state`.
CLOSED, OPEN, HALF_OPEN = "closed", "open", "half-open"


class CircuitBreaker:
    """Closed → open → half-open over consecutive transport failures.

    Thread-safe (the blocking client may be shared across threads).
    ``on_transition(old, new)`` is invoked — outside the lock — on every
    state change, which is how the remote store folds breaker activity
    into the runtime telemetry.
    """

    def __init__(
        self,
        threshold: int = DEFAULT_BREAKER_THRESHOLD,
        reset_timeout: float = DEFAULT_BREAKER_RESET,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Optional[Callable[[str, str], None]] = None,
    ) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if reset_timeout <= 0.0:
            raise ValueError("reset_timeout must be positive")
        self.threshold = threshold
        self.reset_timeout = reset_timeout
        self.on_transition = on_transition
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self.counters: Counter = Counter()

    @classmethod
    def from_env(cls, **kwargs) -> "CircuitBreaker":
        """Defaults from ``REPRO_SERVICE_BREAKER_*`` knobs."""
        kwargs.setdefault("threshold", _env_int(
            "REPRO_SERVICE_BREAKER_THRESHOLD", DEFAULT_BREAKER_THRESHOLD))
        kwargs.setdefault("reset_timeout", _env_float(
            "REPRO_SERVICE_BREAKER_RESET", DEFAULT_BREAKER_RESET))
        return cls(**kwargs)

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def _transition(self, new: str) -> Optional[Callable[[str, str], None]]:
        """Move to ``new`` under the lock; returns the pending callback."""
        old, self._state = self._state, new
        if old == new:
            return None
        self.counters[f"breaker_{new.replace('-', '_')}"] += 1
        if self.on_transition is None:
            return None
        callback = self.on_transition
        return lambda: callback(old, new)

    def allow(self) -> bool:
        """May an attempt proceed right now?

        In the open state, one probe is admitted once ``reset_timeout``
        has elapsed (moving to half-open); everything else is refused
        and counted as a short-circuit.
        """
        # Unlocked fast path: a closed breaker admits everything. The
        # read races benignly with a concurrent open — at worst one
        # extra attempt slips through while the state flips.
        if self._state == CLOSED:
            return True
        pending = None
        with self._lock:
            if self._state == CLOSED:
                return True
            if (self._state == OPEN
                    and self._clock() - self._opened_at
                    >= self.reset_timeout):
                pending = self._transition(HALF_OPEN)
                self.counters["breaker_probes"] += 1
                admitted = True
            else:
                # Open before its window, or half-open with the probe
                # already in flight: refuse locally.
                self.counters["breaker_short_circuits"] += 1
                admitted = False
        if pending is not None:
            pending()
        return admitted

    def retry_in(self) -> float:
        """Seconds until an open breaker will admit a probe (0 = now)."""
        with self._lock:
            if self._state != OPEN:
                return 0.0
            return max(0.0,
                       self._opened_at + self.reset_timeout - self._clock())

    def record_success(self) -> None:
        """A request completed against a live server: close the circuit."""
        # Unlocked fast path for the steady state (closed, no failure
        # streak): nothing to transition, only the counter to tick. A
        # cross-thread race can at worst smudge the success count by
        # one; state changes stay behind the lock.
        if self._state == CLOSED and self._failures == 0:
            self.counters["breaker_successes"] += 1
            return
        with self._lock:
            self._failures = 0
            pending = self._transition(CLOSED)
            self.counters["breaker_successes"] += 1
        if pending is not None:
            pending()

    def record_failure(self) -> None:
        """A transport-level failure (connect refused, reset, timeout)."""
        with self._lock:
            self.counters["breaker_failures"] += 1
            pending = None
            if self._state == HALF_OPEN:
                # The probe failed: straight back to open.
                self._opened_at = self._clock()
                pending = self._transition(OPEN)
            else:
                self._failures += 1
                if self._failures >= self.threshold:
                    self._opened_at = self._clock()
                    pending = self._transition(OPEN)
        if pending is not None:
            pending()

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {"state": self._state,
                    "consecutive_failures": self._failures,
                    "threshold": self.threshold,
                    "reset_timeout": self.reset_timeout,
                    **{name: count
                       for name, count in sorted(self.counters.items())}}
