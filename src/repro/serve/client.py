"""Clients for the AVF query service.

* :class:`ServeClient` — a blocking client (plain socket, one request at
  a time) for scripts, tests, and the remote store. One logical
  ``request()`` fights through transient failure: deterministic
  exponential backoff across reconnects, a wall-clock deadline budget
  capping the total spent, and a circuit breaker that refuses locally
  once the service looks dead;
* :class:`AsyncServeClient` — an asyncio client that multiplexes many
  concurrent requests over one connection by request id (the load
  harness drives thousands of in-flight queries through a handful of
  connections this way);
* :class:`ResilientAsyncClient` — the same retry/breaker/deadline
  discipline wrapped around :class:`AsyncServeClient`, reconnecting a
  shared connection under its concurrent waiters;
* :class:`RemoteStore` — the failure-tolerant ``store.get``/``store.put``
  wrapper the experiment plumbing uses as a fleet-wide timeline store.
  Its failure policy mirrors the on-disk cache's: the service must never
  take a run down, so connection failures and server-side errors count
  and degrade to misses / dropped puts — and once its breaker opens, a
  dead service costs near-zero (no connect tax) until a probe succeeds.

**What can never be wrong.** Every response line is re-validated here: a
line that fails to decode, or a server error carrying no request id
(meaning *our* request line was damaged in flight), is treated as wire
desync — the connection is torn down and the idempotent request is
re-issued. A damaged payload can therefore surface only as a structured
error or a retry, never as a silently different answer.
"""

from __future__ import annotations

import asyncio
import base64
import itertools
import json
import pickle
import socket
import time
from collections import Counter
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.runtime.cache import MISS
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    RETRYABLE_ERROR_CODES,
    canonical_dumps,
)
from repro.serve.resilience import (
    DEFAULT_CLIENT_TIMEOUT,
    DEFAULT_STORE_TIMEOUT,
    BreakerOpen,
    CircuitBreaker,
    ClientPolicy,
    DeadlineBudget,
    service_timeout,
)

#: Structured error codes that mean "try again later", not "you are
#: wrong": shed by admission control, refused during drain, or timed out
#: against the server's own compute deadline.
RETRYABLE_CODES = frozenset(RETRYABLE_ERROR_CODES)


class ServeError(Exception):
    """A structured error answer from the server."""

    def __init__(self, code: str, message: str,
                 retry_after: float = 0.0) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message
        #: Server's hint, in seconds, for when to retry (0 = no hint).
        self.retry_after = retry_after

    @property
    def retryable(self) -> bool:
        return self.code in RETRYABLE_CODES


class WireDesync(ConnectionError):
    """The response stream stopped making sense: treat as transport loss.

    Raised when a response line is undecodable or the server reports an
    error for a request it could not attribute (``id: null`` — our
    request line was damaged in flight). Both mean the framing can no
    longer be trusted, so the connection is closed and the request
    retried; the damage can never be mistaken for an answer.
    """


def parse_address(address: str) -> Tuple[str, int]:
    """``host:port`` → ``(host, port)`` with a clear failure mode."""
    host, sep, port = address.rpartition(":")
    if not sep or not host:
        raise ValueError(f"service address must be host:port, "
                         f"got {address!r}")
    try:
        return host, int(port)
    except ValueError:
        raise ValueError(f"service port must be an integer, got {port!r}")


def _error_from(response: Dict[str, Any]) -> ServeError:
    error = response.get("error") or {}
    retry_after = error.get("retry_after", 0.0)
    if not isinstance(retry_after, (int, float)) \
            or isinstance(retry_after, bool):
        retry_after = 0.0
    return ServeError(error.get("code", "unknown"),
                      error.get("message", ""),
                      retry_after=float(retry_after))


class ServeClient:
    """Blocking single-request client over one persistent connection.

    ``timeout`` is the per-*attempt* socket timeout (connect and read);
    ``None`` means ``REPRO_SERVICE_TIMEOUT`` or 300 s. The ``policy``
    governs how one logical request retries across attempts, and the
    ``breaker`` (shared by callers that want fleet-wide memory, private
    otherwise) short-circuits once the service looks dead.
    """

    def __init__(self, address: str, timeout: Optional[float] = None,
                 policy: Optional[ClientPolicy] = None,
                 breaker: Optional[CircuitBreaker] = None,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        self.host, self.port = parse_address(address)
        self.timeout = (service_timeout(DEFAULT_CLIENT_TIMEOUT)
                        if timeout is None else timeout)
        self.policy = policy if policy is not None else ClientPolicy.from_env()
        self.breaker = (breaker if breaker is not None
                        else CircuitBreaker.from_env())
        self.counters: Counter = Counter()
        self._sleep = sleep
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._ids = itertools.count(1)

    def _connect(self, timeout: Optional[float] = None) -> None:
        sock = socket.create_connection(
            (self.host, self.port),
            timeout=self.timeout if timeout is None else timeout)
        self._sock = sock
        self._file = sock.makefile("rwb")

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request; return its final ``result`` line.

        ``accepted`` progress lines are consumed silently; an ``error``
        line raises :class:`ServeError`. Transport failures (connect
        refused, reset, timeout, wire desync) and retryable structured
        errors are retried per the policy — with deterministic backoff,
        honouring the server's retry-after hint — until the retry or
        deadline budget runs out. Raises :class:`BreakerOpen` without
        touching the network when the circuit is open.
        """
        request = dict(payload)
        request_id = next(self._ids)
        request["id"] = request_id
        line = (canonical_dumps(request) + "\n").encode()
        budget = DeadlineBudget(self.policy.deadline)
        label = f"{self.host}:{self.port}"
        last_error: Optional[Exception] = None
        retry_hint = 0.0
        for attempt in range(self.policy.retries + 1):
            if attempt:
                delay = max(self.policy.backoff_delay(label, request_id,
                                                      attempt), retry_hint)
                remaining = budget.remaining()
                if remaining is not None and delay >= remaining:
                    break  # sleeping would blow the deadline: give up now
                self.counters["client_retries"] += 1
                if delay > 0.0:
                    self._sleep(delay)
            retry_hint = 0.0
            if not self.breaker.allow():
                self.counters["client_short_circuits"] += 1
                raise BreakerOpen(
                    f"service {label} circuit is open "
                    f"(retry in {self.breaker.retry_in():.1f}s)",
                    retry_in=self.breaker.retry_in())
            try:
                if self._file is None:
                    self._connect(budget.clip(self.timeout))
                self._sock.settimeout(budget.clip(self.timeout))
                self._file.write(line)
                self._file.flush()
                response = self._read_final(request_id)
            except (ConnectionError, OSError, EOFError) as exc:
                self.close()
                self.breaker.record_failure()
                self.counters["client_transport_errors"] += 1
                last_error = exc
                continue
            except ServeError as exc:
                # The server answered: it is alive, whatever it said.
                self.breaker.record_success()
                if exc.retryable and attempt < self.policy.retries:
                    self.counters["client_retryable_errors"] += 1
                    retry_hint = exc.retry_after
                    last_error = exc
                    continue
                raise
            self.breaker.record_success()
            return response
        self.counters["client_giveups"] += 1
        if last_error is not None:
            raise last_error
        raise TimeoutError(
            f"service {label}: deadline of {self.policy.deadline}s "
            f"exhausted before any attempt completed")

    def _read_final(self, request_id: int) -> Dict[str, Any]:
        while True:
            raw = self._file.readline()
            if not raw:
                raise EOFError("server closed the connection")
            try:
                response = json.loads(raw)
            except (UnicodeDecodeError, json.JSONDecodeError):
                self.counters["client_desyncs"] += 1
                raise WireDesync("undecodable response line")
            event = response.get("event")
            if response.get("id") != request_id:
                if event == "error" and response.get("id") is None:
                    # The server could not even attribute the request:
                    # our line was damaged in flight.
                    self.counters["client_desyncs"] += 1
                    raise WireDesync(
                        "server rejected an unattributable request line")
                continue  # a stale line from an abandoned request
            if event == "accepted":
                continue
            if event == "error":
                raise _error_from(response)
            return response


class AsyncServeClient:
    """Multiplexing asyncio client: many in-flight requests, one socket.

    Framing is trusted only while it parses: an undecodable response
    line or an unattributable server error kills the connection and
    fails every waiter (with ``ConnectionError``), so damage surfaces as
    a retryable failure, never as a wrong answer.
    """

    def __init__(self) -> None:
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._pending: Dict[int, asyncio.Queue] = {}
        self._ids = itertools.count(1)
        self._pump: Optional[asyncio.Task] = None
        # Request deadlines are enforced by one shared watchdog timer
        # (re-armed at the earliest pending deadline), not a timer per
        # request — per request the cost is a dict write.
        self._deadlines: Dict[int, float] = {}
        self._watchdog: Optional[asyncio.TimerHandle] = None
        self._watchdog_when = 0.0

    async def connect(self, host: str, port: int) -> "AsyncServeClient":
        self._reader, self._writer = await asyncio.open_connection(
            host, port, limit=MAX_LINE_BYTES)
        self._pump = asyncio.ensure_future(self._pump_responses())
        return self

    async def close(self) -> None:
        if self._watchdog is not None:
            self._watchdog.cancel()
            self._watchdog = None
        self._deadlines.clear()
        if self._pump is not None:
            self._pump.cancel()
            try:
                await self._pump
            except (asyncio.CancelledError, Exception):
                pass
            self._pump = None
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writer = None
        # Fail any waiter that slipped in after the pump already exited
        # (a desynced pump ends without closing the writer, so a late
        # request can still register): its deadline was cleared above,
        # and a finished pump's cancel re-runs nothing.
        for queue in self._pending.values():
            queue.put_nowait(None)

    async def _pump_responses(self) -> None:
        assert self._reader is not None
        try:
            while True:
                raw = await self._reader.readline()
                if not raw:
                    break
                try:
                    response = json.loads(raw)
                except (UnicodeDecodeError, json.JSONDecodeError):
                    break  # wire desync: the framing is no longer trusted
                if response.get("event") == "error" \
                        and response.get("id") is None:
                    break  # a request line was damaged in flight
                queue = self._pending.get(response.get("id"))
                if queue is not None:
                    queue.put_nowait(response)
        except (ConnectionError, OSError, EOFError, ValueError):
            pass  # reset / over-long garbage line: same as a close
        finally:
            # Connection gone: fail every waiter. Must run on
            # cancellation too — ``close()`` cancels this task *and*
            # disarms the deadline watchdog, so a waiter skipped here
            # would block forever with no timeout left to save it.
            for queue in self._pending.values():
                queue.put_nowait(None)

    #: Queue sentinel posted by the per-request timer (see ``request``).
    _TIMED_OUT = object()

    async def request(self, payload: Dict[str, Any],
                      collect_events: Optional[List[Dict[str, Any]]] = None,
                      timeout: Optional[float] = None) -> Dict[str, Any]:
        """Send one request; return the final line (raises on error).

        ``timeout`` bounds the wait for the final line. It is enforced
        by the client's shared watchdog timer feeding the response
        queue — not ``asyncio.wait_for``, whose Task-per-request wrapper
        is most of a warm round-trip on localhost. On expiry the request
        raises :class:`asyncio.TimeoutError`; the multiplexer tolerates
        the eventually-arriving stale line (its id no longer has a
        waiter).
        """
        writer = self._writer
        if writer is None or writer.is_closing():
            # Not connected — or a peer sharing this client dropped the
            # connection between our dispatch and now. Retryable.
            raise ConnectionError("connection closed")
        request = dict(payload)
        request_id = next(self._ids)
        request["id"] = request_id
        queue: asyncio.Queue = asyncio.Queue()
        self._pending[request_id] = queue
        if timeout is not None:
            self._arm_deadline(request_id, timeout)
        try:
            # One synchronous buffered write — deliberately no lock and
            # no drain(): the response-queue wait below is then the only
            # suspension point, so the deadline watchdog bounds the
            # whole request (an awaited drain on a dying transport can
            # hang outside any timeout's reach). Request lines are tiny;
            # the transport buffer soaks up any transient stall.
            writer.write((canonical_dumps(request) + "\n").encode())
            while True:
                response = await queue.get()
                if response is None:
                    raise ConnectionError("server connection closed")
                if response is self._TIMED_OUT:
                    raise asyncio.TimeoutError(
                        f"no final line within {timeout}s")
                if collect_events is not None:
                    collect_events.append(response)
                event = response.get("event")
                if event == "accepted":
                    continue
                if event == "error":
                    raise _error_from(response)
                return response
        finally:
            self._deadlines.pop(request_id, None)
            self._pending.pop(request_id, None)

    def _arm_deadline(self, request_id: int, timeout: float) -> None:
        """Register a deadline with the shared watchdog.

        The watchdog is one ``call_at`` armed for the earliest pending
        deadline; it only needs re-arming when a new deadline undercuts
        it, so a steady stream of same-timeout requests costs no timer
        traffic at all.
        """
        loop = asyncio.get_running_loop()
        when = loop.time() + timeout
        self._deadlines[request_id] = when
        if self._watchdog is None or when < self._watchdog_when:
            if self._watchdog is not None:
                self._watchdog.cancel()
            self._watchdog = loop.call_at(when, self._sweep_deadlines)
            self._watchdog_when = when

    def _sweep_deadlines(self) -> None:
        """Watchdog body: time out every overdue request, re-arm."""
        self._watchdog = None
        loop = asyncio.get_running_loop()
        now = loop.time()
        due = [rid for rid, when in self._deadlines.items() if when <= now]
        for rid in due:
            del self._deadlines[rid]
            queue = self._pending.get(rid)
            if queue is not None:
                queue.put_nowait(self._TIMED_OUT)
        if self._deadlines:
            when = min(self._deadlines.values())
            self._watchdog = loop.call_at(when, self._sweep_deadlines)
            self._watchdog_when = when


class ResilientAsyncClient:
    """Retry/breaker/deadline discipline over a shared async connection.

    Many coroutines may call :meth:`request` concurrently; they share
    one :class:`AsyncServeClient` connection. When any of them hits a
    transport failure the connection is dropped (failing the others,
    who then retry through the same path) and re-dialled lazily.
    """

    def __init__(self, host: str, port: int,
                 timeout: Optional[float] = None,
                 policy: Optional[ClientPolicy] = None,
                 breaker: Optional[CircuitBreaker] = None) -> None:
        self.host = host
        self.port = port
        self.timeout = (service_timeout(DEFAULT_CLIENT_TIMEOUT)
                        if timeout is None else timeout)
        self.policy = policy if policy is not None else ClientPolicy.from_env()
        self.breaker = (breaker if breaker is not None
                        else CircuitBreaker.from_env())
        self.counters: Counter = Counter()
        self._client: Optional[AsyncServeClient] = None
        self._connect_lock = asyncio.Lock()
        self._label = f"{host}:{port}"

    async def close(self) -> None:
        await self._drop()

    async def _drop(self) -> None:
        client, self._client = self._client, None
        if client is not None:
            await client.close()

    async def _ensure(self, budget: DeadlineBudget) -> AsyncServeClient:
        # Fast path: already connected (the overwhelmingly common case);
        # the lock only matters when peers race to dial.
        client = self._client
        if client is not None:
            return client
        async with self._connect_lock:
            if self._client is None:
                client = AsyncServeClient()
                await asyncio.wait_for(
                    client.connect(self.host, self.port),
                    budget.clip(self.timeout))
                self._client = client
            return self._client

    async def request(self, payload: Dict[str, Any],
                      collect_events: Optional[List[Dict[str, Any]]] = None
                      ) -> Dict[str, Any]:
        budget = DeadlineBudget(self.policy.deadline)
        label = self._label
        request_index = payload.get("seed", 0) if isinstance(
            payload.get("seed", 0), int) else 0
        last_error: Optional[Exception] = None
        retry_hint = 0.0
        for attempt in range(self.policy.retries + 1):
            if attempt:
                delay = max(self.policy.backoff_delay(
                    label, request_index, attempt), retry_hint)
                remaining = budget.remaining()
                if remaining is not None and delay >= remaining:
                    break
                self.counters["client_retries"] += 1
                if delay > 0.0:
                    await asyncio.sleep(delay)
            retry_hint = 0.0
            if not self.breaker.allow():
                self.counters["client_short_circuits"] += 1
                raise BreakerOpen(
                    f"service {label} circuit is open "
                    f"(retry in {self.breaker.retry_in():.1f}s)",
                    retry_in=self.breaker.retry_in())
            client = None
            try:
                client = await self._ensure(budget)
                response = await client.request(
                    payload, collect_events,
                    timeout=budget.clip(self.timeout))
            except ServeError as exc:
                self.breaker.record_success()
                if exc.retryable and attempt < self.policy.retries:
                    self.counters["client_retryable_errors"] += 1
                    retry_hint = exc.retry_after
                    last_error = exc
                    continue
                raise
            except (ConnectionError, OSError, EOFError,
                    asyncio.TimeoutError, TimeoutError) as exc:
                # Only tear the shared connection down if it is still
                # the one we failed on (a peer may have re-dialled).
                if client is not None and client is self._client:
                    await self._drop()
                self.breaker.record_failure()
                self.counters["client_transport_errors"] += 1
                last_error = exc
                continue
            self.breaker.record_success()
            return response
        self.counters["client_giveups"] += 1
        if last_error is not None:
            raise last_error
        raise TimeoutError(
            f"service {label}: deadline of {self.policy.deadline}s "
            f"exhausted before any attempt completed")


class RemoteStore:
    """Timeline-store client with the cache's never-fail degradation.

    ``get`` returns :data:`repro.runtime.cache.MISS` on anything but a
    clean hit; ``put`` returns False instead of raising. Both tick the
    active telemetry (``remote_store_hits`` / ``_misses`` / ``_puts`` /
    ``_errors``, plus breaker/short-circuit counters) so the summary
    footer accounts for service traffic.

    The wrapped client runs with ``retries=0``: falling back to local
    compute *is* the retry, so a struggling service is paid for exactly
    once per key — and once the breaker opens (after
    ``breaker.threshold`` consecutive connect failures) not even that:
    every further call is refused locally at near-zero cost until the
    reset window admits a probe.
    """

    def __init__(self, address: str, timeout: Optional[float] = None,
                 breaker: Optional[CircuitBreaker] = None) -> None:
        self.address = address
        if timeout is None:
            timeout = service_timeout(DEFAULT_STORE_TIMEOUT)
        self.breaker = (breaker if breaker is not None
                        else CircuitBreaker.from_env())
        self._client = ServeClient(
            address, timeout=timeout,
            policy=ClientPolicy(retries=0),
            breaker=self.breaker)
        self._synced: Counter = Counter()

    def close(self) -> None:
        self._client.close()

    @staticmethod
    def _telemetry():
        from repro.runtime.context import get_runtime

        return get_runtime().telemetry

    def _sync_counters(self) -> None:
        """Fold new client/breaker counter ticks into the telemetry."""
        telemetry = self._telemetry()
        merged = Counter(self._client.counters)
        merged.update(self.breaker.counters)
        for name, total in merged.items():
            delta = total - self._synced[name]
            if delta > 0:
                self._synced[name] = total
                telemetry.increment(f"remote_store_{name}", delta)

    def get(self, key: str) -> Any:
        try:
            response = self._client.request({"op": "store.get", "key": key})
        except BreakerOpen:
            self._telemetry().increment("remote_store_short_circuits")
            self._sync_counters()
            return MISS
        except Exception:
            self._telemetry().increment("remote_store_errors")
            self._sync_counters()
            return MISS
        self._sync_counters()
        if not response.get("found"):
            self._telemetry().increment("remote_store_misses")
            return MISS
        try:
            value = pickle.loads(base64.b64decode(response["value_b64"]))
        except Exception:
            self._telemetry().increment("remote_store_errors")
            return MISS
        self._telemetry().increment("remote_store_hits")
        return value

    def put(self, key: str, value: Any) -> bool:
        try:
            encoded = base64.b64encode(
                pickle.dumps(value,
                             protocol=pickle.HIGHEST_PROTOCOL)).decode()
            response = self._client.request(
                {"op": "store.put", "key": key, "value_b64": encoded})
        except BreakerOpen:
            self._telemetry().increment("remote_store_short_circuits")
            self._sync_counters()
            return False
        except Exception:
            self._telemetry().increment("remote_store_errors")
            self._sync_counters()
            return False
        self._sync_counters()
        self._telemetry().increment("remote_store_puts")
        return bool(response.get("stored"))
