"""Clients for the AVF query service.

* :class:`ServeClient` — a small blocking client (plain socket, one
  request at a time) for scripts, tests, and the remote store;
* :class:`AsyncServeClient` — an asyncio client that multiplexes many
  concurrent requests over one connection by request id (the load
  harness drives thousands of in-flight queries through a handful of
  connections this way);
* :class:`RemoteStore` — the failure-tolerant ``store.get``/``store.put``
  wrapper the experiment plumbing uses as a fleet-wide timeline store.
  Its failure policy mirrors the on-disk cache's: the service must never
  take a run down, so connection failures and server-side errors count
  and degrade to misses / dropped puts.
"""

from __future__ import annotations

import asyncio
import base64
import itertools
import json
import pickle
import socket
from typing import Any, Dict, List, Optional, Tuple

from repro.runtime.cache import MISS
from repro.serve.protocol import MAX_LINE_BYTES, canonical_dumps


class ServeError(Exception):
    """A structured error answer from the server."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message


def parse_address(address: str) -> Tuple[str, int]:
    """``host:port`` → ``(host, port)`` with a clear failure mode."""
    host, sep, port = address.rpartition(":")
    if not sep or not host:
        raise ValueError(f"service address must be host:port, "
                         f"got {address!r}")
    try:
        return host, int(port)
    except ValueError:
        raise ValueError(f"service port must be an integer, got {port!r}")


class ServeClient:
    """Blocking single-request client over one persistent connection."""

    def __init__(self, address: str, timeout: float = 300.0) -> None:
        self.host, self.port = parse_address(address)
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._ids = itertools.count(1)

    def _connect(self) -> None:
        sock = socket.create_connection((self.host, self.port),
                                        timeout=self.timeout)
        self._sock = sock
        self._file = sock.makefile("rwb")

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request; return its final ``result`` line.

        ``accepted`` progress lines are consumed silently; an ``error``
        line raises :class:`ServeError`. One transparent reconnect covers
        a connection that went stale between calls.
        """
        request = dict(payload)
        request_id = next(self._ids)
        request["id"] = request_id
        line = (canonical_dumps(request) + "\n").encode()
        for attempt in (0, 1):
            if self._file is None:
                self._connect()
            try:
                self._file.write(line)
                self._file.flush()
                return self._read_final(request_id)
            except (ConnectionError, OSError, EOFError):
                self.close()
                if attempt:
                    raise
        raise AssertionError("unreachable")

    def _read_final(self, request_id: int) -> Dict[str, Any]:
        while True:
            raw = self._file.readline()
            if not raw:
                raise EOFError("server closed the connection")
            response = json.loads(raw)
            if response.get("id") != request_id:
                continue  # a stale line from an abandoned request
            event = response.get("event")
            if event == "accepted":
                continue
            if event == "error":
                error = response.get("error") or {}
                raise ServeError(error.get("code", "unknown"),
                                 error.get("message", ""))
            return response


class AsyncServeClient:
    """Multiplexing asyncio client: many in-flight requests, one socket."""

    def __init__(self) -> None:
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._pending: Dict[int, asyncio.Queue] = {}
        self._ids = itertools.count(1)
        self._pump: Optional[asyncio.Task] = None
        self._write_lock = asyncio.Lock()

    async def connect(self, host: str, port: int) -> "AsyncServeClient":
        self._reader, self._writer = await asyncio.open_connection(
            host, port, limit=MAX_LINE_BYTES)
        self._pump = asyncio.ensure_future(self._pump_responses())
        return self

    async def close(self) -> None:
        if self._pump is not None:
            self._pump.cancel()
            try:
                await self._pump
            except (asyncio.CancelledError, Exception):
                pass
            self._pump = None
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writer = None

    async def _pump_responses(self) -> None:
        assert self._reader is not None
        while True:
            raw = await self._reader.readline()
            if not raw:
                break
            try:
                response = json.loads(raw)
            except json.JSONDecodeError:
                continue
            queue = self._pending.get(response.get("id"))
            if queue is not None:
                queue.put_nowait(response)
        # Connection gone: fail every waiter.
        for queue in self._pending.values():
            queue.put_nowait(None)

    async def request(self, payload: Dict[str, Any],
                      collect_events: Optional[List[Dict[str, Any]]] = None
                      ) -> Dict[str, Any]:
        """Send one request; return the final line (raises on error)."""
        assert self._writer is not None, "not connected"
        request = dict(payload)
        request_id = next(self._ids)
        request["id"] = request_id
        queue: asyncio.Queue = asyncio.Queue()
        self._pending[request_id] = queue
        try:
            async with self._write_lock:
                self._writer.write((canonical_dumps(request) + "\n")
                                   .encode())
                await self._writer.drain()
            while True:
                response = await queue.get()
                if response is None:
                    raise ConnectionError("server connection closed")
                if collect_events is not None:
                    collect_events.append(response)
                event = response.get("event")
                if event == "accepted":
                    continue
                if event == "error":
                    error = response.get("error") or {}
                    raise ServeError(error.get("code", "unknown"),
                                     error.get("message", ""))
                return response
        finally:
            self._pending.pop(request_id, None)


class RemoteStore:
    """Timeline-store client with the cache's never-fail degradation.

    ``get`` returns :data:`repro.runtime.cache.MISS` on anything but a
    clean hit; ``put`` returns False instead of raising. Both tick the
    active telemetry (``remote_store_hits`` / ``_misses`` / ``_puts`` /
    ``_errors``) so the summary footer accounts for service traffic.
    """

    def __init__(self, address: str, timeout: float = 60.0) -> None:
        self.address = address
        self._client = ServeClient(address, timeout=timeout)

    def close(self) -> None:
        self._client.close()

    @staticmethod
    def _telemetry():
        from repro.runtime.context import get_runtime

        return get_runtime().telemetry

    def get(self, key: str) -> Any:
        try:
            response = self._client.request({"op": "store.get", "key": key})
        except Exception:
            self._telemetry().increment("remote_store_errors")
            return MISS
        if not response.get("found"):
            self._telemetry().increment("remote_store_misses")
            return MISS
        try:
            value = pickle.loads(base64.b64decode(response["value_b64"]))
        except Exception:
            self._telemetry().increment("remote_store_errors")
            return MISS
        self._telemetry().increment("remote_store_hits")
        return value

    def put(self, key: str, value: Any) -> bool:
        try:
            encoded = base64.b64encode(
                pickle.dumps(value,
                             protocol=pickle.HIGHEST_PROTOCOL)).decode()
            response = self._client.request(
                {"op": "store.put", "key": key, "value_b64": encoded})
        except Exception:
            self._telemetry().increment("remote_store_errors")
            return False
        self._telemetry().increment("remote_store_puts")
        return bool(response.get("stored"))
