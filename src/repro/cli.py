"""Command-line interface: regenerate any paper exhibit.

Usage::

    python -m repro table1 --instructions 60000
    python -m repro figure2 --profiles 8 --jobs 4
    python -m repro figure1 --trials 500 --cache-dir ~/.cache/repro
    python -m repro all --profiles 6 --instructions 20000

``--jobs N`` fans benchmark runs and campaign trials out over N worker
processes; results are bit-identical to the serial default. Campaign
strikes are drawn and classified as vectorised array batches
(``--no-batch-strikes`` reverts to per-trial sampling; tallies and cache
keys are identical either way). ``--cache-dir``
enables the persistent result cache — with the interval timing kernel
(default; ``--no-interval-kernel`` selects the legacy per-cycle loop) the
cache doubles as a cross-exhibit timeline store, so a warmed cache re-runs
the whole exhibit suite without a single pipeline simulation. The
telemetry footer reports simulations run, throughput, and hit rates.

Failure semantics: ``--retries`` and ``--trial-timeout`` configure the
supervision layer (crashed or hung shards are retried with backoff and
deterministically-failing trials quarantined); ``--checkpoint-dir``
journals completed campaign blocks so an interrupted run (Ctrl-C,
SIGTERM) exits cleanly and ``--resume`` continues it bit-identically;
``--chaos kill-worker,corrupt-cache,...`` injects deterministic faults
into the runtime itself to prove those recovery paths.
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
import time
from typing import Callable, Dict, List, Optional

from repro.due.tracking import EccScheme
from repro.experiments import (
    ablations,
    figure1,
    figure2,
    figure3,
    figure4,
    fitsweep,
    occupancy,
    regfile,
    table1,
    table2,
)
from repro.experiments.common import ExperimentSettings
from repro.faults.mbu import PRESETS
from repro.runtime.chaos import CHAOS_MODES, ChaosConfig
from repro.runtime.context import configure
from repro.runtime.resilience import CampaignInterrupted
from repro.workloads.spec2000 import ALL_PROFILES


def _select_profiles(count: Optional[int]):
    if count is None or count >= len(ALL_PROFILES):
        return list(ALL_PROFILES)
    step = max(1, len(ALL_PROFILES) // count)
    return ALL_PROFILES[::step][:count]


def _exhibit_runners(args) -> Dict[str, Callable[[], str]]:
    settings = ExperimentSettings(target_instructions=args.instructions,
                                  seed=args.seed)
    profiles = _select_profiles(args.profiles)
    return {
        "table1": lambda: table1.format_result(
            table1.run(settings, profiles)),
        "table2": lambda: table2.format_result(),
        "occupancy": lambda: occupancy.format_result(
            occupancy.run(settings, profiles)),
        "figure1": lambda: figure1.format_result(
            figure1.run(settings, trials=args.trials)),
        "figure2": lambda: figure2.format_result(
            figure2.run(settings, profiles)),
        "figure3": lambda: figure3.format_result(
            figure3.run(settings, profiles)),
        "figure4": lambda: figure4.format_result(
            figure4.run(settings, profiles)),
        "ablations": lambda: "\n\n".join(
            ablations.format_result(fn(settings, profiles))
            for fn in (ablations.accounting_policy,
                       ablations.refetch_policy,
                       ablations.squash_vs_throttle,
                       ablations.issue_policy_contrast,
                       ablations.queue_size_sweep)),
        "regfile": lambda: regfile.format_result(
            regfile.run(settings, profiles)),
        "fitsweep": lambda: fitsweep.format_result(
            fitsweep.run(settings, trials=args.trials,
                         preset_name=args.mbu_preset,
                         scheme_name=args.ecc_scheme)),
        "characterize": lambda: _characterize(settings, profiles),
        "report": lambda: _benchmark_report(args, settings),
    }


def _characterize(settings: ExperimentSettings, profiles) -> str:
    from repro.workloads.characterize import (
        characterize,
        format_characterization,
    )

    return format_characterization(characterize(settings, profiles))


def _benchmark_report(args, settings: ExperimentSettings) -> str:
    from repro.analysis.report import benchmark_report
    from repro.experiments.common import run_benchmark
    from repro.pipeline.config import Trigger
    from repro.workloads.spec2000 import get_profile

    run = run_benchmark(get_profile(args.benchmark), settings, Trigger.NONE)
    return benchmark_report(run, injection_trials=args.trials,
                            seed=args.seed)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate exhibits from Weaver et al., ISCA 2004 "
                    "('Techniques to Reduce the Soft Error Rate of a "
                    "High-Performance Microprocessor').",
    )
    parser.add_argument(
        "exhibit",
        choices=["table1", "table2", "occupancy", "figure1", "figure2",
                 "figure3", "figure4", "ablations", "regfile", "fitsweep",
                 "characterize", "report", "serve", "all"],
        help="which exhibit to regenerate ('all' runs every paper "
             "exhibit; 'serve' starts the AVF query service instead)")
    parser.add_argument(
        "--benchmark", default="crafty",
        help="benchmark name for the 'report' dossier (default crafty)")
    parser.add_argument(
        "--instructions", type=int, default=60_000,
        help="dynamic instructions per benchmark trace (default 60000)")
    parser.add_argument(
        "--profiles", type=int, default=None,
        help="number of benchmark profiles (default: all 26)")
    parser.add_argument(
        "--trials", type=int, default=400,
        help="fault-injection trials for figure1 (default 400)")
    parser.add_argument(
        "--seed", type=int, default=2004,
        help="root seed for deterministic replay (default 2004)")
    parser.add_argument(
        "--mbu-preset", default=None, choices=sorted(PRESETS),
        help="multi-bit upset severity preset for campaigns and the "
             "fitsweep exhibit (default: single-bit faults; fitsweep "
             "falls back to 'terrestrial')")
    parser.add_argument(
        "--ecc-scheme", default=None,
        choices=[s.value for s in EccScheme],
        help="protection scheme from the ECC lattice; restricts the "
             "fitsweep exhibit to one scheme (default: sweep the whole "
             "lattice)")
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for campaigns and benchmark runs "
             "(default 1 = serial; results are identical either way)")
    parser.add_argument(
        "--cache-dir", default=None,
        help="directory for the persistent result cache (default: off)")
    parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass the persistent cache entirely (no reads, no writes)")
    parser.add_argument(
        "--retries", type=int, default=2,
        help="retry budget per failed shard/benchmark before quarantine "
             "(default 2; 0 = fail fast)")
    parser.add_argument(
        "--trial-timeout", type=float, default=None,
        help="watchdog deadline per campaign trial, in seconds; a shard "
             "of N trials is declared hung after N x this (default: off)")
    parser.add_argument(
        "--checkpoint-dir", default=None,
        help="journal completed campaign blocks here so interrupted runs "
             "can be resumed (default: off)")
    parser.add_argument(
        "--resume", action="store_true",
        help="continue an interrupted campaign from its checkpoint "
             "journal (requires --checkpoint-dir); tallies are "
             "bit-identical to an uninterrupted run")
    parser.add_argument(
        "--chaos", default=None, metavar="MODES",
        help="inject deterministic faults into the runtime itself; comma "
             f"list of {', '.join(CHAOS_MODES)}")
    parser.add_argument(
        "--chaos-seed", type=int, default=1337,
        help="seed for the chaos injector's decisions (default 1337)")
    parser.add_argument(
        "--no-interval-kernel", action="store_true",
        help="run the legacy per-cycle timing loop instead of the "
             "interval-compressed kernel (slower; every report is "
             "bit-identical either way)")
    parser.add_argument(
        "--no-chunk-memo", action="store_true",
        help="run the interval kernel without basic-block chunk "
             "memoization (slower on repetitive workloads; cycles, "
             "intervals, and cache keys are bit-identical either way)")
    parser.add_argument(
        "--no-static-filter", action="store_true",
        help="disable the effect oracle's static pre-filter (every "
             "strike is classified by re-execution, as in the original "
             "slow path; tallies are identical either way)")
    parser.add_argument(
        "--no-batch-strikes", action="store_true",
        help="sample and classify campaign strikes one trial at a time "
             "instead of as vectorised arrays (slower; tallies and "
             "cache keys are bit-identical either way)")
    parser.add_argument(
        "--service", default=os.environ.get("REPRO_SERVICE") or None,
        metavar="HOST:PORT",
        help="running 'repro serve' instance to use as a fleet-wide "
             "timeline store: timing entries are fetched from it before "
             "simulating and written through after (default: "
             "$REPRO_SERVICE; service failures degrade to local compute)")
    parser.add_argument(
        "--service-timeout", type=float, default=None, metavar="SECONDS",
        help="per-attempt socket timeout for service clients (default "
             "$REPRO_SERVICE_TIMEOUT, else 60s for the timeline store / "
             "300s interactive)")
    parser.add_argument(
        "--host", default=None,
        help="serve: listen address (default $REPRO_SERVE_HOST or "
             "127.0.0.1)")
    parser.add_argument(
        "--port", type=int, default=None,
        help="serve: listen port, 0 picks a free one (default "
             "$REPRO_SERVE_PORT or 8787)")
    parser.add_argument(
        "--lru-entries", type=int, default=None,
        help="serve: answered-key LRU capacity (default $REPRO_SERVE_LRU "
             "or 256)")
    parser.add_argument(
        "--compute-workers", type=int, default=None,
        help="serve: engine threads draining cold keys (default "
             "$REPRO_SERVE_WORKERS or 1; each computation still fans out "
             "over --jobs worker processes)")
    parser.add_argument(
        "--max-inflight", type=int, default=None,
        help="serve: cold computations admitted before new cold keys are "
             "shed with a retryable 'overloaded' error (default "
             "$REPRO_SERVE_MAX_INFLIGHT or 64; 0 disables shedding)")
    parser.add_argument(
        "--compute-deadline", type=float, default=None, metavar="SECONDS",
        help="serve: per-query answer deadline; past it the request "
             "fails with retryable 'deadline-exceeded' while the "
             "computation continues into the LRU (default "
             "$REPRO_SERVE_DEADLINE or off)")
    parser.add_argument(
        "--verbose", action="store_true",
        help="extended telemetry footer: oracle fast-path breakdown, "
             "warmed-hierarchy reuse, and raw counters")
    return parser


def _run_server(args, runtime) -> int:
    """``repro serve``: run the AVF query service until interrupted.

    The service answers over the *active* runtime context, so ``--jobs``,
    ``--cache-dir``, ``--retries`` and friends shape every cold
    computation exactly as they would a CLI exhibit run.
    """
    from repro.serve.server import ServeConfig, serve_forever

    try:
        config = ServeConfig.from_env(host=args.host, port=args.port,
                                      lru_entries=args.lru_entries,
                                      compute_workers=args.compute_workers,
                                      max_inflight=args.max_inflight,
                                      compute_deadline=args.compute_deadline)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    def announce(message: str) -> None:
        print(message, flush=True)

    # SIGTERM is handled by the server's own asyncio handler (graceful
    # drain, exit 143) — it supersedes the generic KeyboardInterrupt
    # conversion while the loop runs.
    code = serve_forever(config, announce)
    print(runtime.telemetry.format_summary(cache=runtime.cache,
                                           jobs=runtime.jobs,
                                           verbose=args.verbose))
    return code


def _install_sigterm_handler() -> None:
    """Convert SIGTERM into KeyboardInterrupt so campaigns drain cleanly."""
    def _handler(signum, frame):
        raise KeyboardInterrupt

    try:
        signal.signal(signal.SIGTERM, _handler)
    except (ValueError, OSError):
        # Not the main thread (embedded use) or unsupported platform.
        pass


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 2
    if args.retries < 0:
        print("error: --retries must be >= 0", file=sys.stderr)
        return 2
    if args.resume and not args.checkpoint_dir:
        print("error: --resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    chaos = None
    if args.chaos:
        try:
            chaos = ChaosConfig.parse(args.chaos, seed=args.chaos_seed)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    try:
        runtime = configure(jobs=args.jobs, cache_dir=args.cache_dir,
                            no_cache=args.no_cache, retries=args.retries,
                            trial_timeout=args.trial_timeout,
                            checkpoint_dir=args.checkpoint_dir,
                            resume=args.resume, chaos=chaos,
                            static_filter=not args.no_static_filter,
                            interval_kernel=not args.no_interval_kernel,
                            batch_strikes=not args.no_batch_strikes,
                            chunk_memo=not args.no_chunk_memo,
                            service=args.service,
                            service_timeout=args.service_timeout,
                            mbu_preset=args.mbu_preset,
                            ecc_scheme=args.ecc_scheme)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    _install_sigterm_handler()
    if args.exhibit == "serve":
        return _run_server(args, runtime)
    runners = _exhibit_runners(args)
    if args.exhibit == "all":
        names = ["table1", "table2", "occupancy", "figure1", "figure2",
                 "figure3", "figure4"]
    else:
        names = [args.exhibit]
    try:
        for name in names:
            started = time.time()
            text = runners[name]()
            elapsed = time.time() - started
            print(text)
            print(f"\n[{name} regenerated in {elapsed:.1f}s]\n")
    except (KeyboardInterrupt, CampaignInterrupted) as exc:
        detail = str(exc) or "signal received"
        hint = ("; resume with --resume --checkpoint-dir "
                f"{args.checkpoint_dir}" if args.checkpoint_dir else "")
        print(f"\n[interrupted: {detail}{hint}]", file=sys.stderr)
        print(runtime.telemetry.format_summary(cache=runtime.cache,
                                               jobs=runtime.jobs,
                                               verbose=args.verbose))
        return 130
    print(runtime.telemetry.format_summary(cache=runtime.cache,
                                           jobs=runtime.jobs,
                                           verbose=args.verbose))
    return 0


if __name__ == "__main__":
    sys.exit(main())
