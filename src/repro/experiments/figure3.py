"""Figure 3: PET-buffer coverage of FDD instructions vs buffer size.

Three cumulative series over buffer sizes (the paper sweeps to ~16 K
entries): FDD via registers excluding procedure-return deaths (the base
PET design), plus return-scoped register deaths, plus FDD via memory.
The paper's anchors: a 512-entry buffer covers ~32 % of FDD-via-register
instructions, and ~10 K entries with return tracking covers most of them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.deadcode import DynClass
from repro.due.pet import DEFAULT_PET_SIZES, pet_coverage_by_size
from repro.experiments.common import ExperimentSettings, prefetch_functional
from repro.util.tables import format_table
from repro.workloads.profile import BenchmarkProfile
from repro.workloads.spec2000 import ALL_PROFILES

#: The three cumulative series: label -> classes the PET variant tracks.
SERIES: Tuple[Tuple[str, Tuple[DynClass, ...]], ...] = (
    ("FDD reg (other)", (DynClass.FDD_REG,)),
    ("+ FDD reg via returns", (DynClass.FDD_REG, DynClass.FDD_REG_RETURN)),
    ("+ FDD via memory", (DynClass.FDD_REG, DynClass.FDD_REG_RETURN,
                          DynClass.FDD_MEM)),
)

#: Shared denominator so the series nest (all first-level-dead classes).
_ALL_FDD = (DynClass.FDD_REG, DynClass.FDD_REG_RETURN, DynClass.FDD_MEM)


@dataclass
class Figure3Result:
    sizes: Tuple[int, ...]
    #: series label -> {size -> average coverage fraction}
    curves: Dict[str, Dict[int, float]]

    def coverage(self, label: str, size: int) -> float:
        return self.curves[label][size]


def run(
    settings: Optional[ExperimentSettings] = None,
    profiles: Optional[Sequence[BenchmarkProfile]] = None,
    sizes: Sequence[int] = DEFAULT_PET_SIZES,
) -> Figure3Result:
    settings = settings or ExperimentSettings()
    profiles = list(profiles or ALL_PROFILES)
    sizes = tuple(sizes)
    totals: Dict[str, Dict[int, float]] = {
        label: {size: 0.0 for size in sizes} for label, _ in SERIES}
    for _, _, deadness in prefetch_functional(profiles, settings):
        for label, classes in SERIES:
            coverage = pet_coverage_by_size(
                deadness, sizes, classes=classes,
                denominator_classes=_ALL_FDD)
            for size in sizes:
                totals[label][size] += coverage[size]
    for label, _ in SERIES:
        for size in sizes:
            totals[label][size] /= len(profiles)
    return Figure3Result(sizes=sizes, curves=totals)


def format_result(result: Figure3Result) -> str:
    headers = ["PET entries"] + [label for label, _ in SERIES]
    body = [
        [str(size)] + [f"{result.curves[label][size]:.1%}"
                       for label, _ in SERIES]
        for size in result.sizes
    ]
    table = format_table(
        headers, body,
        title="Figure 3: coverage of FDD instructions vs PET buffer size "
              "(fraction of all first-level-dead instructions)",
    )
    anchor = ""
    if 512 in result.sizes:
        base = result.curves[SERIES[0][0]][512]
        anchor = (f"\n\n512-entry buffer covers {base:.0%} of "
                  f"FDD-via-register deaths (paper: ~32%)")
    from repro.util.charts import series_chart

    chart = series_chart(
        [str(size) for size in result.sizes],
        {label: [result.curves[label][size] for size in result.sizes]
         for label, _ in SERIES},
        title="PET coverage vs size (F=reg, +=returns, ++=memory)")
    return f"{table}{anchor}\n\n{chart}"
