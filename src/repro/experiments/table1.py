"""Table 1: impact of squashing on IPC and the IQ's SDC/DUE AVFs.

Paper values (averaged across all benchmarks):

=========================  ====  =======  =======  =============  =============
Design point               IPC   SDC AVF  DUE AVF  IPC/SDC AVF    IPC/DUE AVF
=========================  ====  =======  =======  =============  =============
No squashing               1.21  29 %     62 %     4.1            2.0
Squash on L1 load misses   1.19  22 %     51 %     5.6            2.3
Squash on L0 load misses   1.09  19 %     48 %     5.7            2.3
=========================  ====  =======  =======  =============  =============
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.common import (
    ExperimentSettings,
    average_reports,
    run_benchmarks,
)
from repro.pipeline.config import Trigger
from repro.util.tables import format_table
from repro.workloads.profile import BenchmarkProfile
from repro.workloads.spec2000 import ALL_PROFILES

_DESIGN_POINTS = (
    ("No squashing", Trigger.NONE),
    ("Squash on L1 load misses", Trigger.L1_MISS),
    ("Squash on L0 load misses", Trigger.L0_MISS),
)


@dataclass
class Table1Row:
    design_point: str
    trigger: Trigger
    ipc: float
    sdc_avf: float
    due_avf: float
    ipc_over_sdc: float
    ipc_over_due: float


@dataclass
class Table1Result:
    rows: List[Table1Row]
    #: per-benchmark reports: {design point -> {benchmark -> IqAvfReport}}
    details: Dict[str, Dict[str, object]]

    def row(self, design_point: str) -> Table1Row:
        for row in self.rows:
            if row.design_point == design_point:
                return row
        raise KeyError(design_point)

    def mitf_gain(self, design_point: str, kind: str = "sdc") -> float:
        """Relative MITF change vs no squashing (paper: +37 % SDC, +15 % DUE
        for the L1 trigger)."""
        base = self.row("No squashing")
        new = self.row(design_point)
        if kind == "sdc":
            return new.ipc_over_sdc / base.ipc_over_sdc - 1.0
        if kind == "due":
            return new.ipc_over_due / base.ipc_over_due - 1.0
        raise ValueError("kind must be 'sdc' or 'due'")


def run(
    settings: Optional[ExperimentSettings] = None,
    profiles: Optional[Sequence[BenchmarkProfile]] = None,
) -> Table1Result:
    """Regenerate Table 1 over the given profiles (default: all 26)."""
    settings = settings or ExperimentSettings()
    profiles = list(profiles or ALL_PROFILES)
    rows: List[Table1Row] = []
    details: Dict[str, Dict[str, object]] = {}
    for label, trigger in _DESIGN_POINTS:
        runs = run_benchmarks(profiles, settings, trigger)
        reports = {profile.name: run_.report
                   for profile, run_ in zip(profiles, runs)}
        means = average_reports(reports.values())
        rows.append(Table1Row(
            design_point=label,
            trigger=trigger,
            ipc=means["ipc"],
            sdc_avf=means["sdc_avf"],
            due_avf=means["due_avf"],
            ipc_over_sdc=means["ipc_over_sdc_avf"],
            ipc_over_due=means["ipc_over_due_avf"],
        ))
        details[label] = reports
    return Table1Result(rows=rows, details=details)


def format_result(result: Table1Result) -> str:
    table = format_table(
        headers=["Design Point", "IPC", "SDC AVF", "DUE AVF",
                 "IPC / SDC AVF", "IPC / DUE AVF"],
        rows=[
            [row.design_point, f"{row.ipc:.2f}", f"{row.sdc_avf:.1%}",
             f"{row.due_avf:.1%}", f"{row.ipc_over_sdc:.1f}",
             f"{row.ipc_over_due:.1f}"]
            for row in result.rows
        ],
        title="Table 1: Impact of squashing on IPC and the instruction "
              "queue's SDC and DUE AVFs",
    )
    l1_sdc = result.mitf_gain("Squash on L1 load misses", "sdc")
    l1_due = result.mitf_gain("Squash on L1 load misses", "due")
    l0_sdc = result.mitf_gain("Squash on L0 load misses", "sdc")
    l0_due = result.mitf_gain("Squash on L0 load misses", "due")
    return (
        f"{table}\n\n"
        f"MITF gain vs no squashing (paper: L1 +37% SDC / +15% DUE):\n"
        f"  squash on L1: SDC MITF {l1_sdc:+.0%}, DUE MITF {l1_due:+.0%}\n"
        f"  squash on L0: SDC MITF {l0_sdc:+.0%}, DUE MITF {l0_due:+.0%}"
    )
