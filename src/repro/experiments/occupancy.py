"""Section 4.1: the instruction queue's residency decomposition.

Paper values (baseline, averaged): 29 % ACE, 30 % idle, 8 % Ex-ACE and
33 % valid un-ACE — so parity turns a 29 % SDC AVF into a
29 % + 33 % = 62 % DUE AVF, *more than doubling* the queue's error
contribution. This module regenerates that decomposition, plus the anti-π
re-decode ablation (folding Ex-ACE into the false-DUE window raises the
false DUE AVF — the paper's 33 % -> 41 % example).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.common import ExperimentSettings, run_benchmarks
from repro.pipeline.config import Trigger
from repro.util.tables import format_table
from repro.workloads.profile import BenchmarkProfile
from repro.workloads.spec2000 import ALL_PROFILES


@dataclass
class OccupancyRow:
    benchmark: str
    suite: str
    idle: float
    ace: float
    valid_unace: float
    ex_ace: float

    @property
    def due_avf_with_parity(self) -> float:
        return self.ace + self.valid_unace

    @property
    def false_due_with_redecode(self) -> float:
        """Anti-π via re-decode at retire: Ex-ACE joins the false window."""
        return self.valid_unace + self.ex_ace


@dataclass
class OccupancyResult:
    rows: List[OccupancyRow]

    def averages(self) -> Dict[str, float]:
        n = len(self.rows)
        return {
            "idle": sum(r.idle for r in self.rows) / n,
            "ace": sum(r.ace for r in self.rows) / n,
            "valid_unace": sum(r.valid_unace for r in self.rows) / n,
            "ex_ace": sum(r.ex_ace for r in self.rows) / n,
        }


def run(
    settings: Optional[ExperimentSettings] = None,
    profiles: Optional[Sequence[BenchmarkProfile]] = None,
) -> OccupancyResult:
    settings = settings or ExperimentSettings()
    profiles = list(profiles or ALL_PROFILES)
    rows = []
    runs = run_benchmarks(profiles, settings, Trigger.NONE)
    for profile, bench_run in zip(profiles, runs):
        report = bench_run.report
        summary = report.residency_summary()
        rows.append(OccupancyRow(
            benchmark=profile.name,
            suite=profile.suite,
            idle=summary["idle"],
            ace=summary["ace"],
            valid_unace=summary["valid_unace"],
            ex_ace=summary["ex_ace"],
        ))
    return OccupancyResult(rows=rows)


def format_result(result: OccupancyResult) -> str:
    table = format_table(
        headers=["Benchmark", "Idle", "ACE", "Valid un-ACE", "Ex-ACE"],
        rows=[[r.benchmark, f"{r.idle:.1%}", f"{r.ace:.1%}",
               f"{r.valid_unace:.1%}", f"{r.ex_ace:.1%}"]
              for r in result.rows],
        title="Section 4.1: instruction-queue residency decomposition "
              "(paper: 30% / 29% / 33% / 8%)",
    )
    avg = result.averages()
    due = avg["ace"] + avg["valid_unace"]
    redecode = avg["valid_unace"] + avg["ex_ace"]
    return (
        f"{table}\n\n"
        f"Average: idle {avg['idle']:.1%}, ACE {avg['ace']:.1%}, "
        f"valid un-ACE {avg['valid_unace']:.1%}, Ex-ACE {avg['ex_ace']:.1%}\n"
        f"Parity-protected DUE AVF = {avg['ace']:.1%} + "
        f"{avg['valid_unace']:.1%} = {due:.1%} "
        f"(paper: 29% + 33% = 62%)\n"
        f"Anti-π via re-decode at retire would raise false DUE AVF to "
        f"{redecode:.1%} (paper: 33% -> 41%)"
    )
