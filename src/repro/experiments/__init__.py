"""Paper-exhibit reproduction harness.

One module per exhibit (Table 1, Figures 1-4, the Section 4.1 occupancy
breakdown, Table 2's catalogue), plus shared plumbing in ``common``.
Each module exposes ``run(...)`` returning structured rows and a
``format_...`` helper that prints the same rows the paper reports.
"""

from repro.experiments.common import (
    BenchmarkRun,
    ExperimentSettings,
    average_reports,
    prefetch_functional,
    run_benchmark,
    run_benchmarks,
)

__all__ = [
    "BenchmarkRun",
    "ExperimentSettings",
    "average_reports",
    "prefetch_functional",
    "run_benchmark",
    "run_benchmarks",
]
