"""Figure 2: coverage of the IQ's false DUE AVF by tracking technique.

The paper's cumulative averages: π-bit-to-commit removes 18 % of the false
DUE AVF (more for integer codes), the anti-π bit a further 49 % (fp 60 %,
int 35 %), a 512-entry PET buffer ~3 %, register-file π another 11 %,
carrying π to the store commit point 8 %, and π through the memory system
the final 12 % — 100 % of false DUE events covered.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.due.tracking import (
    DEFAULT_PET_ENTRIES,
    TrackingLevel,
    false_due_coverage,
)
from repro.experiments.common import ExperimentSettings, run_benchmarks
from repro.pipeline.config import Trigger
from repro.util.tables import format_table
from repro.workloads.profile import BenchmarkProfile
from repro.workloads.spec2000 import ALL_PROFILES

_LEVELS = (
    TrackingLevel.PI_COMMIT,
    TrackingLevel.ANTI_PI,
    TrackingLevel.PET,
    TrackingLevel.REG_PI,
    TrackingLevel.STORE_PI,
    TrackingLevel.MEM_PI,
)

_LEVEL_LABELS = {
    TrackingLevel.PI_COMMIT: "pi to commit",
    TrackingLevel.ANTI_PI: "+ anti-pi",
    TrackingLevel.PET: "+ PET(512)",
    TrackingLevel.REG_PI: "+ reg pi",
    TrackingLevel.STORE_PI: "+ store pi",
    TrackingLevel.MEM_PI: "+ memory pi",
}


@dataclass
class Figure2Row:
    benchmark: str
    suite: str
    false_due_avf: float
    #: Cumulative coverage (fraction of false DUE removed) per level.
    coverage: Dict[TrackingLevel, float]


@dataclass
class Figure2Result:
    rows: List[Figure2Row]
    pet_entries: int

    def average_coverage(
        self, level: TrackingLevel, suite: Optional[str] = None
    ) -> float:
        rows = [r for r in self.rows if suite is None or r.suite == suite]
        return sum(r.coverage[level] for r in rows) / len(rows)

    def incremental_coverage(self, level: TrackingLevel) -> float:
        """Average coverage added by ``level`` beyond the level below it."""
        index = _LEVELS.index(level)
        below = self.average_coverage(_LEVELS[index - 1]) if index else 0.0
        return self.average_coverage(level) - below


def run(
    settings: Optional[ExperimentSettings] = None,
    profiles: Optional[Sequence[BenchmarkProfile]] = None,
    pet_entries: int = DEFAULT_PET_ENTRIES,
) -> Figure2Result:
    settings = settings or ExperimentSettings()
    profiles = list(profiles or ALL_PROFILES)
    rows = []
    runs = run_benchmarks(profiles, settings, Trigger.NONE)
    for profile, bench_run in zip(profiles, runs):
        breakdown = bench_run.report.breakdown
        coverage = {
            level: false_due_coverage(breakdown, level, pet_entries)
            for level in _LEVELS
        }
        rows.append(Figure2Row(
            benchmark=profile.name,
            suite=profile.suite,
            false_due_avf=breakdown.false_due_avf,
            coverage=coverage,
        ))
    return Figure2Result(rows=rows, pet_entries=pet_entries)


def format_result(result: Figure2Result) -> str:
    headers = ["Benchmark", "false DUE"] + \
        [_LEVEL_LABELS[lvl] for lvl in _LEVELS]
    body = [
        [r.benchmark, f"{r.false_due_avf:.1%}"]
        + [f"{r.coverage[lvl]:.0%}" for lvl in _LEVELS]
        for r in result.rows
    ]
    table = format_table(
        headers, body,
        title="Figure 2: cumulative coverage of the instruction queue's "
              "false DUE AVF",
    )
    lines = [table, "", "Average incremental coverage "
             "(paper: 18% / 49% / 3% / 11% / 8% / 12%):"]
    for level in _LEVELS:
        lines.append(f"  {_LEVEL_LABELS[level]:13s} "
                     f"{result.incremental_coverage(level):+.0%}")
    anti_int = result.average_coverage(TrackingLevel.ANTI_PI, "int") \
        - result.average_coverage(TrackingLevel.PI_COMMIT, "int")
    anti_fp = result.average_coverage(TrackingLevel.ANTI_PI, "fp") \
        - result.average_coverage(TrackingLevel.PI_COMMIT, "fp")
    lines.append(
        f"anti-pi increment by suite (paper: int 35%, fp 60%): "
        f"int {anti_int:.0%}, fp {anti_fp:.0%}")
    lines.append(
        f"total coverage at memory-pi: "
        f"{result.average_coverage(TrackingLevel.MEM_PI):.0%} (paper: 100%)")
    from repro.util.charts import bar_chart

    lines.append("")
    lines.append(bar_chart(
        [(_LEVEL_LABELS[lvl], result.average_coverage(lvl))
         for lvl in _LEVELS],
        maximum=1.0,
        title="cumulative false-DUE coverage (suite average)"))
    return "\n".join(lines)
