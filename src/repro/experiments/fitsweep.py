"""ECC design-space sweep: residual FIT per scheme, node, and environment.

Beyond the paper's parity-vs-tracking trade-off, a queue facing
multi-bit upsets has a code-strength axis: how much correction to buy
per entry. This exhibit injects one multi-bit campaign per lattice
scheme (:class:`~repro.due.tracking.EccScheme`) over a workload set,
averages the residual SDC/DUE AVFs, converts them into FIT per
technology node and radiation environment (:mod:`repro.avf.fit`), and
ranks the schemes — silent corruption first, detected rate second,
check-bit overhead as the tie-breaker.

Everything is deterministic: campaigns ride the per-trial seed streams
(so any ``--jobs N`` reproduces the serial tallies bit-for-bit) and the
FIT algebra is closed-form, making the formatted exhibit byte-stable
across worker counts — the benchmark harness (``tools/bench_fit.py``)
asserts exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.avf.fit import (
    ENVIRONMENTS,
    NODES,
    FitCell,
    action_fractions,
    fit_matrix,
    rank_schemes,
)
from repro.due.tracking import (
    CHECK_BITS,
    BurstAction,
    EccScheme,
    SCHEME_LADDER,
    TrackingLevel,
)
from repro.experiments.common import ExperimentSettings, run_benchmarks
from repro.faults.campaign import CampaignConfig, run_campaign
from repro.faults.mbu import get_preset
from repro.pipeline.config import Trigger
from repro.runtime.context import get_runtime
from repro.util.tables import format_table
from repro.workloads.spec2000 import get_profile

#: Default workload trio: a control-heavy, a memory-bound, and a
#: loop-dominated profile, so the scheme means are not one program's
#: idiosyncrasy.
DEFAULT_PROFILES: Tuple[str, ...] = ("crafty", "mcf", "swim")


@dataclass
class SchemeRow:
    """Workload-mean campaign estimates for one protection scheme."""

    scheme: Optional[EccScheme]
    corrected: float
    due: float
    false_due: float
    sdc: float

    @property
    def residual(self) -> float:
        """Residual uncorrectable rate: silent plus detected errors."""
        return self.sdc + self.due


@dataclass
class FitSweepResult:
    preset_name: str
    tracking: TrackingLevel
    trials: int
    benchmarks: Tuple[str, ...]
    rows: Dict[Optional[EccScheme], SchemeRow]
    ranking: Tuple[EccScheme, ...]

    @property
    def winner(self) -> EccScheme:
        return self.ranking[0]

    def cells(self, scheme: Optional[EccScheme]) -> Tuple[FitCell, ...]:
        row = self.rows[scheme]
        return fit_matrix(row.sdc, row.due)


def _resolve_schemes(scheme_name: Optional[str]) -> List[Optional[EccScheme]]:
    if scheme_name is None:
        scheme_name = get_runtime().ecc_scheme
    if scheme_name is None:
        return list(SCHEME_LADDER)
    return [EccScheme(scheme_name)]


def run(
    settings: Optional[ExperimentSettings] = None,
    profiles: Optional[Sequence] = None,
    trials: int = 240,
    preset_name: Optional[str] = None,
    scheme_name: Optional[str] = None,
    tracking: TrackingLevel = TrackingLevel.PARITY_ONLY,
) -> FitSweepResult:
    """Sweep the ECC lattice under one MBU preset across ``profiles``.

    ``preset_name``/``scheme_name`` default to the runtime context's
    ``--mbu-preset``/``--ecc-scheme`` knobs; with neither set, the sweep
    uses the ``terrestrial`` preset over the full lattice plus the
    unprotected queue as the zero-cost baseline.
    """
    settings = settings or ExperimentSettings()
    if preset_name is None:
        preset_name = get_runtime().mbu_preset or "terrestrial"
    get_preset(preset_name)  # fail fast on unknown names
    schemes: List[Optional[EccScheme]] = [None]
    schemes += _resolve_schemes(scheme_name)
    if profiles is None:
        profiles = [get_profile(name) for name in DEFAULT_PROFILES]
    runs = run_benchmarks(list(profiles), settings, Trigger.NONE)

    rows: Dict[Optional[EccScheme], SchemeRow] = {}
    residuals: Dict[EccScheme, Tuple[float, float]] = {}
    for scheme in schemes:
        corrected = due = false_due = sdc = 0.0
        for bench in runs:
            campaign = run_campaign(
                bench.program, bench.execution, bench.pipeline,
                CampaignConfig(trials=trials, seed=settings.seed,
                               tracking=tracking, scheme=scheme,
                               mbu_preset=preset_name))
            corrected += campaign.corrected_estimate
            due += campaign.due_avf_estimate
            false_due += campaign.false_due_estimate
            sdc += campaign.sdc_avf_estimate
        n = len(runs)
        row = SchemeRow(scheme=scheme, corrected=corrected / n,
                        due=due / n, false_due=false_due / n, sdc=sdc / n)
        rows[scheme] = row
        if scheme is not None:
            residuals[scheme] = (row.sdc, row.due)

    return FitSweepResult(
        preset_name=preset_name, tracking=tracking, trials=trials,
        benchmarks=tuple(bench.profile.name for bench in runs),
        rows=rows, ranking=rank_schemes(residuals))


def _scheme_label(scheme: Optional[EccScheme]) -> str:
    return "none" if scheme is None else scheme.value


def format_result(result: FitSweepResult) -> str:
    preset = get_preset(result.preset_name)
    sweep_rows: List[List[str]] = []
    for scheme, row in result.rows.items():
        check = "0" if scheme is None else str(CHECK_BITS[scheme])
        sweep_rows.append([
            _scheme_label(scheme), check,
            f"{row.corrected:.1%}", f"{row.due:.1%}",
            f"{row.sdc:.1%}", f"{row.residual:.1%}",
        ])
    sweep = format_table(
        headers=["Scheme", "check bits", "corrected", "DUE", "SDC",
                 "residual"],
        rows=sweep_rows,
        title=f"ECC design space under the {result.preset_name!r} MBU "
              f"preset ({', '.join(result.benchmarks)}; {result.trials} "
              f"strikes per campaign; tracking "
              f"{result.tracking.name})")

    mix_rows: List[List[str]] = []
    for scheme in result.rows:
        fractions = action_fractions(scheme, preset)
        mix_rows.append([
            _scheme_label(scheme),
            f"{fractions[BurstAction.CORRECT]:.1%}",
            f"{fractions[BurstAction.DETECT]:.1%}",
            f"{fractions[BurstAction.ESCAPE]:.1%}",
        ])
    mix = format_table(
        headers=["Scheme", "correct", "detect", "escape"],
        rows=mix_rows,
        title="Analytic decoder action mix over the preset PMF "
              "(the campaign columns converge to read-strike shares "
              "of these)")

    winner = result.winner
    fit_rows: List[List[str]] = []
    for node in NODES:
        cells = {cell.environment: cell for cell in result.cells(winner)
                 if cell.node == node}
        fit_rows.append([node] + [
            f"{cells[env].total_fit:.3g}" for env in ENVIRONMENTS])
    fit = format_table(
        headers=["Node"] + [f"{env} (FIT)" for env in ENVIRONMENTS],
        rows=fit_rows,
        title=f"Projected queue FIT for the winning scheme "
              f"({winner.value}; raw SER x flux x residual AVF)")

    ranking = " > ".join(
        _scheme_label(scheme) for scheme in result.ranking)
    return (
        f"{sweep}\n\n{mix}\n\n{fit}\n\n"
        f"Ranking (SDC first, DUE second, check bits last): {ranking}. "
        f"Node and environment scale every scheme's FIT by the same "
        f"constant, so this order holds across the whole matrix."
    )
