"""Ablations for the design choices DESIGN.md calls out.

These are not exhibits from the paper; they probe the modeling decisions
the reproduction had to make and the design space around the paper's
mechanisms:

* **Accounting policy** — the paper's conservative ACE accounting charges
  exposure-squash victims at their own class; the read-gated refinement
  proves them harmless. How much AVF headroom does the refinement reveal?
* **Refetch policy** — refetch immediately after a squash vs holding the
  refetch until the miss data is about to return ("bring them back when
  the pipeline resumes").
* **Action** — squash vs fetch throttling on the same trigger (the paper
  found throttling added little and dropped it).
* **Queue size** — AVF and IPC as the instruction queue shrinks or grows.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from repro.avf.occupancy import AccountingPolicy, compute_breakdown
from repro.experiments.common import (
    ExperimentSettings,
    prefetch_functional,
    run_benchmark,
)
from repro.pipeline.config import (
    IssuePolicy,
    SquashAction,
    SquashConfig,
    Trigger,
)
from repro.util.tables import format_table
from repro.workloads.profile import BenchmarkProfile
from repro.workloads.spec2000 import ALL_PROFILES


@dataclass
class AblationRow:
    label: str
    ipc: float
    sdc_avf: float
    due_avf: float


@dataclass
class AblationResult:
    title: str
    rows: List[AblationRow]

    def row(self, label: str) -> AblationRow:
        for row in self.rows:
            if row.label == label:
                return row
        raise KeyError(label)


def _mean_over(profiles, settings, machine_fn, policy):
    """Average IPC/SDC/DUE over profiles for a machine-config factory.

    Timing runs go through :func:`run_benchmark`, so configurations an
    ablation shares with the main exhibits (or with another ablation —
    both accounting policies integrate the *same* run) are simulated
    once and land in the cross-exhibit timeline store; only the cheap
    breakdown integration is redone per accounting policy.
    """
    ipc = sdc = due = 0.0
    prefetch_functional(profiles, settings)
    for profile in profiles:
        run = run_benchmark(profile, settings,
                            machine=machine_fn(profile))
        breakdown = compute_breakdown(run.pipeline, run.deadness, policy)
        ipc += run.pipeline.ipc
        sdc += breakdown.sdc_avf
        due += breakdown.due_avf
    n = len(profiles)
    return ipc / n, sdc / n, due / n


def accounting_policy(
    settings: Optional[ExperimentSettings] = None,
    profiles: Optional[Sequence[BenchmarkProfile]] = None,
) -> AblationResult:
    """Conservative vs read-gated accounting under the L1 squash."""
    settings = settings or ExperimentSettings()
    profiles = list(profiles or ALL_PROFILES)
    rows = []
    for label, policy in (
            ("conservative (paper)", AccountingPolicy.CONSERVATIVE),
            ("read-gated", AccountingPolicy.READ_GATED)):
        def machine(profile):
            return replace(
                settings.machine_for(profile, Trigger.L1_MISS))
        ipc, sdc, due = _mean_over(profiles, settings, machine, policy)
        rows.append(AblationRow(label, ipc, sdc, due))
    return AblationResult("Squash-victim accounting (L1 squash)", rows)


def refetch_policy(
    settings: Optional[ExperimentSettings] = None,
    profiles: Optional[Sequence[BenchmarkProfile]] = None,
) -> AblationResult:
    """Immediate refetch vs refetch timed to the miss return."""
    settings = settings or ExperimentSettings()
    profiles = list(profiles or ALL_PROFILES)
    rows = []
    for label, resume in (("refetch immediately", False),
                          ("resume at miss return", True)):
        def machine(profile, resume=resume):
            base = settings.machine_for(profile, Trigger.L1_MISS)
            return replace(base, squash=replace(base.squash,
                                                resume_at_miss_return=resume))
        ipc, sdc, due = _mean_over(profiles, settings, machine,
                                   AccountingPolicy.CONSERVATIVE)
        rows.append(AblationRow(label, ipc, sdc, due))
    return AblationResult("Refetch policy after an exposure squash", rows)


def squash_vs_throttle(
    settings: Optional[ExperimentSettings] = None,
    profiles: Optional[Sequence[BenchmarkProfile]] = None,
) -> AblationResult:
    """The paper's two actions on the L1 trigger, plus no action."""
    settings = settings or ExperimentSettings()
    profiles = list(profiles or ALL_PROFILES)
    rows = []
    configurations = (
        ("no action", SquashConfig(trigger=Trigger.NONE)),
        ("squash", SquashConfig(trigger=Trigger.L1_MISS,
                                action=SquashAction.SQUASH)),
        ("fetch throttle", SquashConfig(trigger=Trigger.L1_MISS,
                                        action=SquashAction.THROTTLE)),
    )
    for label, squash in configurations:
        def machine(profile, squash=squash):
            base = settings.machine_for(profile, Trigger.NONE)
            return replace(base, squash=squash)
        ipc, sdc, due = _mean_over(profiles, settings, machine,
                                   AccountingPolicy.CONSERVATIVE)
        rows.append(AblationRow(label, ipc, sdc, due))
    return AblationResult("Action on an L1-miss trigger", rows)


def queue_size_sweep(
    settings: Optional[ExperimentSettings] = None,
    profiles: Optional[Sequence[BenchmarkProfile]] = None,
    sizes: Sequence[int] = (16, 32, 64, 128),
) -> AblationResult:
    """Instruction-queue size vs IPC and AVF (baseline, no squashing)."""
    settings = settings or ExperimentSettings()
    profiles = list(profiles or ALL_PROFILES)
    rows = []
    for size in sizes:
        def machine(profile, size=size):
            base = settings.machine_for(profile, Trigger.NONE)
            return replace(base, iq_entries=size)
        ipc, sdc, due = _mean_over(profiles, settings, machine,
                                   AccountingPolicy.CONSERVATIVE)
        rows.append(AblationRow(f"{size}-entry IQ", ipc, sdc, due))
    return AblationResult("Instruction-queue size sweep", rows)


def issue_policy_contrast(
    settings: Optional[ExperimentSettings] = None,
    profiles: Optional[Sequence[BenchmarkProfile]] = None,
) -> AblationResult:
    """In-order vs windowed out-of-order issue, with and without squash.

    The paper evaluates an in-order machine and notes the situation is
    "similar, though not as pronounced, for out-of-order machines in which
    instructions dependent on a load miss cannot make progress until the
    load returns data".
    """
    settings = settings or ExperimentSettings()
    profiles = list(profiles or ALL_PROFILES)
    rows = []
    for policy_label, policy in (("in-order", IssuePolicy.IN_ORDER),
                                 ("ooo window", IssuePolicy.OOO_WINDOW)):
        for trigger_label, trigger in (("baseline", Trigger.NONE),
                                       ("squash L1", Trigger.L1_MISS)):
            def machine(profile, policy=policy, trigger=trigger):
                base = settings.machine_for(profile, trigger)
                return replace(base, issue_policy=policy)
            ipc, sdc, due = _mean_over(profiles, settings, machine,
                                       AccountingPolicy.CONSERVATIVE)
            rows.append(AblationRow(f"{policy_label}, {trigger_label}",
                                    ipc, sdc, due))
    return AblationResult("Issue policy vs exposure reduction", rows)


def format_result(result: AblationResult) -> str:
    return format_table(
        headers=["Configuration", "IPC", "SDC AVF", "DUE AVF"],
        rows=[[row.label, f"{row.ipc:.2f}", f"{row.sdc_avf:.1%}",
               f"{row.due_avf:.1%}"] for row in result.rows],
        title=f"Ablation: {result.title}",
    )
