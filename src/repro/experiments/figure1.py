"""Figure 1: the fault-outcome taxonomy, populated by fault injection.

Figure 1 in the paper is a conceptual decision tree; we regenerate it
empirically: a Monte-Carlo strike campaign classifies every injected
fault into the taxonomy's leaves, once for an unprotected queue and once
for a parity-protected queue (optionally with a tracking level).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.due.outcomes import FaultOutcome
from repro.due.tracking import TrackingLevel
from repro.experiments.common import ExperimentSettings, run_benchmark
from repro.faults.campaign import CampaignConfig, CampaignResult, run_campaign
from repro.pipeline.config import Trigger
from repro.util.tables import format_table
from repro.workloads.spec2000 import get_profile


@dataclass
class Figure1Result:
    benchmark: str
    trials: int
    unprotected: CampaignResult
    parity: CampaignResult
    tracked: CampaignResult
    tracking: TrackingLevel


def run(
    settings: Optional[ExperimentSettings] = None,
    benchmark: str = "crafty",
    trials: int = 400,
    tracking: TrackingLevel = TrackingLevel.STORE_PI,
) -> Figure1Result:
    settings = settings or ExperimentSettings()
    bench = run_benchmark(get_profile(benchmark), settings, Trigger.NONE)
    unprotected = run_campaign(
        bench.program, bench.execution, bench.pipeline,
        CampaignConfig(trials=trials, seed=settings.seed, parity=False))
    parity = run_campaign(
        bench.program, bench.execution, bench.pipeline,
        CampaignConfig(trials=trials, seed=settings.seed, parity=True,
                       tracking=TrackingLevel.PARITY_ONLY))
    tracked = run_campaign(
        bench.program, bench.execution, bench.pipeline,
        CampaignConfig(trials=trials, seed=settings.seed, parity=True,
                       tracking=tracking))
    return Figure1Result(benchmark=benchmark, trials=trials,
                         unprotected=unprotected, parity=parity,
                         tracked=tracked, tracking=tracking)


def format_result(result: Figure1Result) -> str:
    outcomes = [o for o in FaultOutcome
                if any(c.counts[o] for c in (result.unprotected,
                                             result.parity, result.tracked))]
    rows: List[List[str]] = []
    for outcome in outcomes:
        rows.append([
            outcome.value,
            f"{result.unprotected.rate(outcome):.1%}",
            f"{result.parity.rate(outcome):.1%}",
            f"{result.tracked.rate(outcome):.1%}",
        ])
    table = format_table(
        headers=["Outcome", "unprotected", "parity",
                 f"parity + {result.tracking.name}"],
        rows=rows,
        title=f"Figure 1: fault-outcome distribution "
              f"({result.benchmark}, {result.trials} strikes per column)",
    )
    return (
        f"{table}\n\n"
        f"Detection converts SDC into DUE; tracking removes the false "
        f"share. False DUE under parity alone: "
        f"{result.parity.false_due_estimate:.1%} of strikes "
        f"({result.parity.false_due_estimate / max(1e-9, result.parity.due_avf_estimate):.0%} "
        f"of all DUE; the paper reports false DUE as up to 52% of DUE)."
    )
