"""Shared plumbing for the experiment modules.

``run_benchmark`` owns the full per-benchmark flow:

    profile -> synthesize program -> functional execution -> deadness
            -> timing simulation (per squash config) -> AVF report

The functional half (program, trace, deadness) is cached per
(profile, size, seed) because every exhibit reuses it across squash
configurations; the timing half is cached per squash trigger.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.deadcode import DeadnessAnalysis, analyze_deadness
from repro.arch.executor import FunctionalSimulator
from repro.arch.result import ExecutionResult
from repro.avf.avf_calc import IqAvfReport, compute_iq_avf
from repro.isa.program import Program
from repro.pipeline.config import MachineConfig, SquashConfig, Trigger
from repro.pipeline.core import PipelineSimulator
from repro.pipeline.result import PipelineResult
from repro.workloads.codegen import synthesize
from repro.workloads.profile import BenchmarkProfile


@dataclass(frozen=True)
class ExperimentSettings:
    """Run-size and seed knobs shared by all exhibits."""

    target_instructions: int = 60_000
    seed: int = 2004
    machine: MachineConfig = field(default_factory=MachineConfig)

    def machine_for(
        self, profile: BenchmarkProfile, trigger: Trigger
    ) -> MachineConfig:
        """Machine config specialised to one profile and squash trigger."""
        return replace(
            self.machine,
            fetch_bubble_prob=profile.fetch_bubble_prob,
            squash=replace(self.machine.squash, trigger=trigger),
        )


@dataclass
class BenchmarkRun:
    """Everything derived from one benchmark at one squash setting."""

    profile: BenchmarkProfile
    program: Program
    execution: ExecutionResult
    deadness: DeadnessAnalysis
    pipeline: PipelineResult
    report: IqAvfReport


_functional_cache: Dict[Tuple, Tuple] = {}
_run_cache: Dict[Tuple, BenchmarkRun] = {}


def clear_caches() -> None:
    """Drop memoised functional and timing results (mainly for tests)."""
    _functional_cache.clear()
    _run_cache.clear()


def functional_parts(
    profile: BenchmarkProfile, settings: ExperimentSettings
) -> Tuple[Program, ExecutionResult, DeadnessAnalysis]:
    """Synthesize + execute + classify once per (profile, size, seed)."""
    key = (profile.name, settings.target_instructions, settings.seed)
    if key not in _functional_cache:
        program = synthesize(profile, settings.target_instructions,
                             seed=settings.seed)
        execution = FunctionalSimulator(program).run()
        if not execution.clean:
            raise RuntimeError(
                f"synthetic program {profile.name} did not halt cleanly: "
                f"{execution.status}")
        deadness = analyze_deadness(execution)
        _functional_cache[key] = (program, execution, deadness)
    return _functional_cache[key]


def run_benchmark(
    profile: BenchmarkProfile,
    settings: Optional[ExperimentSettings] = None,
    trigger: Trigger = Trigger.NONE,
) -> BenchmarkRun:
    """Full flow for one benchmark at one squash trigger (memoised)."""
    settings = settings or ExperimentSettings()
    key = (profile.name, settings.target_instructions, settings.seed,
           trigger, settings.machine.squash.action,
           settings.machine.squash.resume_at_miss_return)
    if key in _run_cache:
        return _run_cache[key]
    program, execution, deadness = functional_parts(profile, settings)
    machine = settings.machine_for(profile, trigger)
    pipeline = PipelineSimulator(program, execution.trace, machine,
                                 seed=settings.seed).run()
    report = compute_iq_avf(profile.name, pipeline, deadness)
    run = BenchmarkRun(profile=profile, program=program, execution=execution,
                       deadness=deadness, pipeline=pipeline, report=report)
    _run_cache[key] = run
    return run


def average_reports(reports: Iterable[IqAvfReport]) -> Dict[str, float]:
    """Arithmetic means of the headline metrics across benchmarks.

    The paper averages IPC and AVFs arithmetically across benchmarks
    (Table 1 'averaged across all benchmarks'); we do the same.
    """
    reports = list(reports)
    if not reports:
        raise ValueError("no reports to average")
    n = len(reports)
    mean_ipc = sum(r.ipc for r in reports) / n
    mean_sdc = sum(r.sdc_avf for r in reports) / n
    mean_due = sum(r.due_avf for r in reports) / n
    mean_false = sum(r.false_due_avf for r in reports) / n
    return {
        "ipc": mean_ipc,
        "sdc_avf": mean_sdc,
        "due_avf": mean_due,
        "false_due_avf": mean_false,
        "ipc_over_sdc_avf": mean_ipc / mean_sdc if mean_sdc else 0.0,
        "ipc_over_due_avf": mean_ipc / mean_due if mean_due else 0.0,
    }
