"""Shared plumbing for the experiment modules.

``run_benchmark`` owns the full per-benchmark flow:

    profile -> synthesize program -> functional execution -> deadness
            -> timing simulation (per squash config) -> AVF report

The functional half (program, trace, deadness) is cached per
(profile, size, seed) because every exhibit reuses it across squash
configurations; the timing half is cached per squash trigger.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.deadcode import DeadnessAnalysis, analyze_deadness
from repro.arch.executor import FunctionalSimulator
from repro.arch.result import ExecutionResult
from repro.avf.avf_calc import IqAvfReport, compute_iq_avf
from repro.isa.program import Program
from repro.pipeline.config import MachineConfig, SquashConfig, Trigger
from repro.pipeline.core import PipelineSimulator
from repro.pipeline.result import PipelineResult
from repro.runtime.cache import MISS, cache_key
from repro.runtime.context import get_runtime
from repro.workloads.codegen import synthesize
from repro.workloads.profile import BenchmarkProfile


@dataclass(frozen=True)
class ExperimentSettings:
    """Run-size and seed knobs shared by all exhibits."""

    target_instructions: int = 60_000
    seed: int = 2004
    machine: MachineConfig = field(default_factory=MachineConfig)

    def machine_for(
        self, profile: BenchmarkProfile, trigger: Trigger
    ) -> MachineConfig:
        """Machine config specialised to one profile and squash trigger."""
        return replace(
            self.machine,
            fetch_bubble_prob=profile.fetch_bubble_prob,
            squash=replace(self.machine.squash, trigger=trigger),
        )


@dataclass
class BenchmarkRun:
    """Everything derived from one benchmark at one squash setting."""

    profile: BenchmarkProfile
    program: Program
    execution: ExecutionResult
    deadness: DeadnessAnalysis
    pipeline: PipelineResult
    report: IqAvfReport


_functional_cache: Dict[Tuple, Tuple] = {}
_run_cache: Dict[Tuple, BenchmarkRun] = {}
#: Open connections to remote timeline services, one per address.
_remote_stores: Dict[str, object] = {}


def clear_caches() -> None:
    """Drop memoised functional and timing results (mainly for tests)."""
    _functional_cache.clear()
    _run_cache.clear()


def close_remote_stores() -> None:
    """Drop open service-store connections (tests / server restarts)."""
    for store in _remote_stores.values():
        store.close()
    _remote_stores.clear()


def _remote_store():
    """The timeline-store client for the context's service, if any.

    Connections are pooled per address and lazy: nothing is opened until
    a timing entry is actually fetched or written. All failures inside
    the returned store degrade to misses/dropped puts (see
    :class:`repro.serve.client.RemoteStore`), preserving the cache
    layer's never-take-a-run-down policy.
    """
    runtime = get_runtime()
    address = runtime.service
    if address is None:
        return None
    store = _remote_stores.get(address)
    if store is None:
        # Local import: the experiments package must stay importable
        # without the serving stack.
        from repro.serve.client import RemoteStore

        store = RemoteStore(address, timeout=runtime.service_timeout)
        _remote_stores[address] = store
    return store


def _functional_key(profile: BenchmarkProfile,
                    settings: ExperimentSettings) -> Tuple:
    return (profile.name, settings.target_instructions, settings.seed)


def _run_key(profile: BenchmarkProfile, settings: ExperimentSettings,
             machine: MachineConfig) -> Tuple:
    # The *full* machine config is part of the key. (An earlier version
    # keyed only on the trigger/squash knobs, silently aliasing runs that
    # differed in any other machine parameter — queue size, issue policy,
    # fetch_bubble_prob — the moment a caller varied them.)
    return (profile.name, settings.target_instructions, settings.seed,
            machine)


def functional_parts(
    profile: BenchmarkProfile, settings: ExperimentSettings
) -> Tuple[Program, ExecutionResult, DeadnessAnalysis]:
    """Synthesize + execute + classify once per (profile, size, seed).

    Consults the active runtime context's persistent cache (if any)
    before simulating; every simulation ticks the telemetry counters.
    """
    key = _functional_key(profile, settings)
    if key in _functional_cache:
        return _functional_cache[key]
    runtime = get_runtime()
    disk_key = None
    if runtime.cache is not None:
        disk_key = cache_key("functional", profile,
                             settings.target_instructions, settings.seed)
        cached = runtime.cache.get(disk_key)
        if cached is not MISS:
            _functional_cache[key] = cached
            return cached
    program = synthesize(profile, settings.target_instructions,
                         seed=settings.seed)
    execution = FunctionalSimulator(program).run()
    if not execution.clean:
        raise RuntimeError(
            f"synthetic program {profile.name} did not halt cleanly: "
            f"{execution.status}")
    deadness = analyze_deadness(execution)
    runtime.telemetry.increment("functional_sims")
    _functional_cache[key] = (program, execution, deadness)
    if disk_key is not None:
        runtime.cache.put(disk_key, _functional_cache[key])
    return _functional_cache[key]


def run_benchmark(
    profile: BenchmarkProfile,
    settings: Optional[ExperimentSettings] = None,
    trigger: Trigger = Trigger.NONE,
    machine: Optional[MachineConfig] = None,
) -> BenchmarkRun:
    """Full flow for one benchmark at one machine configuration (memoised).

    ``machine`` defaults to ``settings.machine_for(profile, trigger)``;
    passing it explicitly lets the ablations (queue sizes, issue policies,
    throttling, ...) share this memo and the persistent timeline store
    with the main exhibits instead of re-simulating. When ``machine`` is
    given, ``trigger`` is ignored.

    The persistent-cache entry for the timing half stores
    ``(pipeline, report)`` — with the interval kernel, the pipeline
    result carries its compact interval timeline, so a populated store
    lets the whole exhibit suite re-run without a single timing
    simulation. The (much larger) functional parts are cached once per
    (profile, size, seed) and shared by every machine configuration.
    """
    settings = settings or ExperimentSettings()
    if machine is None:
        machine = settings.machine_for(profile, trigger)
    key = _run_key(profile, settings, machine)
    if key in _run_cache:
        return _run_cache[key]
    runtime = get_runtime()
    remote = _remote_store()
    disk_key = None
    if runtime.cache is not None or remote is not None:
        disk_key = cache_key("run", profile, settings.target_instructions,
                             settings.seed, machine)
    # Timing-entry lookup order: local persistent store, then the remote
    # service store (a remote hit is written through locally so the next
    # run in this environment answers without network traffic).
    cached = MISS
    if runtime.cache is not None:
        cached = runtime.cache.get(disk_key)
    if cached is MISS and remote is not None:
        cached = remote.get(disk_key)
        if cached is not MISS and runtime.cache is not None:
            runtime.cache.put(disk_key, cached)
    if cached is not MISS:
        try:
            pipeline, report = cached
        except (TypeError, ValueError):
            # Wrong-shape entry (whichever store produced it): degrade
            # to a recompute; the puts below overwrite it.
            runtime.telemetry.increment("cache_corrupt_entries")
        else:
            runtime.telemetry.increment("timeline_store_hits")
            program, execution, deadness = functional_parts(profile, settings)
            run = BenchmarkRun(profile=profile, program=program,
                               execution=execution, deadness=deadness,
                               pipeline=pipeline, report=report)
            _run_cache[key] = run
            return run
    program, execution, deadness = functional_parts(profile, settings)
    pipeline = PipelineSimulator(program, execution.trace, machine,
                                 seed=settings.seed).run()
    runtime.telemetry.increment("pipeline_sims")
    report = compute_iq_avf(profile.name, pipeline, deadness)
    run = BenchmarkRun(profile=profile, program=program, execution=execution,
                       deadness=deadness, pipeline=pipeline, report=report)
    _run_cache[key] = run
    if disk_key is not None:
        if runtime.cache is not None:
            runtime.cache.put(disk_key, (pipeline, report))
        if remote is not None:
            remote.put(disk_key, (pipeline, report))
    return run


def run_benchmarks(
    profiles: Iterable[BenchmarkProfile],
    settings: Optional[ExperimentSettings] = None,
    trigger: Trigger = Trigger.NONE,
    jobs: Optional[int] = None,
) -> List[BenchmarkRun]:
    """Batch :func:`run_benchmark`, fanning misses out across processes.

    With ``jobs`` (or the active context's worker count) above one, the
    profiles not already memoised are computed in worker processes; each
    worker writes through to the shared persistent cache, and results are
    returned in ``profiles`` order, bit-identical to the serial path.
    """
    settings = settings or ExperimentSettings()
    profiles = list(profiles)
    runtime = get_runtime()
    effective_jobs = runtime.jobs if jobs is None else jobs
    if effective_jobs > 1:
        pending = [
            p for p in profiles
            if _run_key(p, settings, settings.machine_for(p, trigger))
            not in _run_cache]
        if len(pending) > 1:
            from repro.runtime.engine import run_benchmarks_parallel

            runs = run_benchmarks_parallel(
                pending, settings, trigger, effective_jobs,
                cache_dir=runtime.cache_dir, telemetry=runtime.telemetry,
                policy=runtime.policy, chaos=runtime.chaos,
                interval_kernel=runtime.interval_kernel,
                chunk_memo=runtime.chunk_memo)
            for profile, run in zip(pending, runs):
                _run_cache[_run_key(
                    profile, settings,
                    settings.machine_for(profile, trigger))] = run
                _functional_cache.setdefault(
                    _functional_key(profile, settings),
                    (run.program, run.execution, run.deadness))
    return [run_benchmark(profile, settings, trigger)
            for profile in profiles]


def prefetch_functional(
    profiles: Iterable[BenchmarkProfile],
    settings: Optional[ExperimentSettings] = None,
    jobs: Optional[int] = None,
) -> List[Tuple[Program, ExecutionResult, DeadnessAnalysis]]:
    """Batch :func:`functional_parts` across worker processes."""
    settings = settings or ExperimentSettings()
    profiles = list(profiles)
    runtime = get_runtime()
    effective_jobs = runtime.jobs if jobs is None else jobs
    if effective_jobs > 1:
        pending = [p for p in profiles
                   if _functional_key(p, settings) not in _functional_cache]
        if len(pending) > 1:
            from repro.runtime.engine import functional_parallel

            parts = functional_parallel(
                pending, settings, effective_jobs,
                cache_dir=runtime.cache_dir, telemetry=runtime.telemetry,
                policy=runtime.policy, chaos=runtime.chaos)
            for profile, part in zip(pending, parts):
                _functional_cache[_functional_key(profile, settings)] = part
    return [functional_parts(profile, settings) for profile in profiles]


def average_reports(reports: Iterable[IqAvfReport]) -> Dict[str, float]:
    """Arithmetic means of the headline metrics across benchmarks.

    The paper averages IPC and AVFs arithmetically across benchmarks
    (Table 1 'averaged across all benchmarks'); we do the same.
    """
    reports = list(reports)
    if not reports:
        raise ValueError("no reports to average")
    n = len(reports)
    mean_ipc = sum(r.ipc for r in reports) / n
    mean_sdc = sum(r.sdc_avf for r in reports) / n
    mean_due = sum(r.due_avf for r in reports) / n
    mean_false = sum(r.false_due_avf for r in reports) / n
    return {
        "ipc": mean_ipc,
        "sdc_avf": mean_sdc,
        "due_avf": mean_due,
        "false_due_avf": mean_false,
        "ipc_over_sdc_avf": mean_ipc / mean_sdc if mean_sdc else 0.0,
        "ipc_over_due_avf": mean_ipc / mean_due if mean_due else 0.0,
    }
