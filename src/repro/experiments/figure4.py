"""Figure 4: combining exposure reduction and false-DUE tracking.

Per benchmark, the paper reports (a) the SDC AVF of the *unprotected*
queue with squash-on-L1-miss, relative to no squashing (average -26 %;
ammp -90 % for only -7 % IPC), and (b) the DUE AVF of the *parity-
protected* queue with squash-on-L1 plus π tracking to the store commit
point, relative to the untracked baseline (average -57 %); IPC cost ~2 %.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.due.tracking import TrackingLevel, due_avf_with_tracking
from repro.experiments.common import ExperimentSettings, run_benchmarks
from repro.pipeline.config import Trigger
from repro.util.tables import format_table
from repro.workloads.profile import BenchmarkProfile
from repro.workloads.spec2000 import ALL_PROFILES


@dataclass
class Figure4Row:
    benchmark: str
    suite: str
    base_ipc: float
    opt_ipc: float
    base_sdc: float
    opt_sdc: float  # squash-L1, unprotected queue
    base_due: float  # parity, no tracking, no squash
    opt_due: float  # parity, squash-L1 + store-pi tracking

    @property
    def relative_sdc(self) -> float:
        return self.opt_sdc / self.base_sdc if self.base_sdc else 0.0

    @property
    def relative_due(self) -> float:
        return self.opt_due / self.base_due if self.base_due else 0.0

    @property
    def ipc_change(self) -> float:
        return self.opt_ipc / self.base_ipc - 1.0 if self.base_ipc else 0.0


@dataclass
class Figure4Result:
    rows: List[Figure4Row]

    def average_relative_sdc(self) -> float:
        return sum(r.relative_sdc for r in self.rows) / len(self.rows)

    def average_relative_due(self) -> float:
        return sum(r.relative_due for r in self.rows) / len(self.rows)

    def average_ipc_change(self) -> float:
        return sum(r.ipc_change for r in self.rows) / len(self.rows)

    def row(self, benchmark: str) -> Figure4Row:
        for row in self.rows:
            if row.benchmark == benchmark:
                return row
        raise KeyError(benchmark)


def run(
    settings: Optional[ExperimentSettings] = None,
    profiles: Optional[Sequence[BenchmarkProfile]] = None,
) -> Figure4Result:
    settings = settings or ExperimentSettings()
    profiles = list(profiles or ALL_PROFILES)
    rows = []
    base_runs = run_benchmarks(profiles, settings, Trigger.NONE)
    opt_runs = run_benchmarks(profiles, settings, Trigger.L1_MISS)
    for profile, base_run, opt_run in zip(profiles, base_runs, opt_runs):
        base = base_run.report
        opt = opt_run.report
        rows.append(Figure4Row(
            benchmark=profile.name,
            suite=profile.suite,
            base_ipc=base.ipc,
            opt_ipc=opt.ipc,
            base_sdc=base.sdc_avf,
            opt_sdc=opt.sdc_avf,
            base_due=base.due_avf,
            opt_due=due_avf_with_tracking(opt.breakdown,
                                          TrackingLevel.STORE_PI),
        ))
    return Figure4Result(rows=rows)


def format_result(result: Figure4Result) -> str:
    table = format_table(
        headers=["Benchmark", "Rel. SDC AVF", "Rel. DUE AVF", "IPC change"],
        rows=[[r.benchmark, f"{r.relative_sdc:.2f}", f"{r.relative_due:.2f}",
               f"{r.ipc_change:+.1%}"]
              for r in result.rows],
        title="Figure 4: relative SDC AVF (squash on L1, unprotected) and "
              "relative DUE AVF (squash + store-pi tracking, parity)",
    )
    from repro.util.charts import bar_chart

    chart = bar_chart(
        [(row.benchmark, row.relative_sdc) for row in result.rows],
        maximum=1.0, unit="x",
        title="relative SDC AVF under squash-on-L1 (1.0 = no change)")
    return (
        f"{table}\n\n"
        f"Average relative SDC AVF: {result.average_relative_sdc():.2f} "
        f"(paper: 0.74, i.e. -26%)\n"
        f"Average relative DUE AVF: {result.average_relative_due():.2f} "
        f"(paper: 0.43, i.e. -57%)\n"
        f"Average IPC change: {result.average_ipc_change():+.1%} "
        f"(paper: about -2%)\n\n{chart}"
    )
