"""Table 2: the benchmark catalogue.

For the paper this records SimPoint skip intervals for each SPEC CPU2000
binary; for the reproduction it documents the synthetic stand-ins (the
skip interval is carried as metadata, plus the knobs that differentiate
each profile).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.util.tables import format_table
from repro.workloads.profile import BenchmarkProfile
from repro.workloads.spec2000 import FP_PROFILES, INT_PROFILES


def rows_for(profiles: Sequence[BenchmarkProfile]) -> List[List[str]]:
    return [
        [p.name, f"{p.skip_millions:,} M", f"{p.w_noop:.0f}",
         f"{p.w_branch_rand:.1f}", f"{p.w_cold_load:.2f}",
         f"{p.fetch_bubble_prob:.2f}"]
        for p in profiles
    ]


def format_result() -> str:
    headers = ["Benchmark", "Instructions Skipped (paper)", "w_noop",
               "w_branch_rand", "w_cold_load", "fetch bubble"]
    int_table = format_table(headers, rows_for(INT_PROFILES),
                             title="Table 2a: Integer benchmarks")
    fp_table = format_table(headers, rows_for(FP_PROFILES),
                            title="Table 2b: Floating-point benchmarks")
    return f"{int_table}\n\n{fp_table}"
