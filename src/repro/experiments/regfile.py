"""Register-file AVF (the paper's closing remark, quantified).

"Once these mechanisms are in place, they can also reduce the AVF of other
structures, such as the register file." This exhibit computes the register
file's SDC AVF, its parity DUE AVF, and the DUE AVF once register π bits
stop dead values from signalling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.analysis.regfile import RegisterFileAvf, compute_regfile_avf
from repro.experiments.common import ExperimentSettings, run_benchmark
from repro.pipeline.config import Trigger
from repro.util.tables import format_table
from repro.workloads.profile import BenchmarkProfile
from repro.workloads.spec2000 import ALL_PROFILES


@dataclass
class RegfileRow:
    benchmark: str
    suite: str
    avf: RegisterFileAvf


@dataclass
class RegfileResult:
    rows: List[RegfileRow]

    def average(self, attribute: str) -> float:
        return sum(getattr(r.avf, attribute) for r in self.rows) \
            / len(self.rows)


def run(
    settings: Optional[ExperimentSettings] = None,
    profiles: Optional[Sequence[BenchmarkProfile]] = None,
    trigger: Trigger = Trigger.NONE,
) -> RegfileResult:
    settings = settings or ExperimentSettings()
    profiles = list(profiles or ALL_PROFILES)
    rows = []
    for profile in profiles:
        bench = run_benchmark(profile, settings, trigger)
        avf = compute_regfile_avf(bench.pipeline, bench.execution.trace,
                                  bench.deadness)
        rows.append(RegfileRow(profile.name, profile.suite, avf))
    return RegfileResult(rows=rows)


def format_result(result: RegfileResult) -> str:
    table = format_table(
        headers=["Benchmark", "RF SDC AVF", "RF DUE AVF (parity)",
                 "RF DUE AVF (+reg pi)", "dead-value residency"],
        rows=[[r.benchmark, f"{r.avf.sdc_avf:.1%}",
               f"{r.avf.due_avf_with_parity:.1%}",
               f"{r.avf.due_avf_with_register_pi:.1%}",
               f"{r.avf.dead_fraction:.1%}"]
              for r in result.rows],
        title="Register-file AVF and the effect of register pi bits",
    )
    return (
        f"{table}\n\n"
        f"Average RF SDC AVF {result.average('sdc_avf'):.1%}; "
        f"register pi bits cut the parity DUE AVF from "
        f"{result.average('due_avf_with_parity'):.1%} to "
        f"{result.average('due_avf_with_register_pi'):.1%}"
    )
