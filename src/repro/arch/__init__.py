"""Architectural (functional) simulation of REPRO-64 programs.

This layer executes programs exactly — register values, memory contents,
branch outcomes, call/return structure — and records the committed dynamic
trace. The timing pipeline replays that trace; the dead-code analysis and
the fault injector both consume it.
"""

from repro.arch.executor import ExecutionLimits, ExecutionStatus, FunctionalSimulator
from repro.arch.result import ExecutionResult, InvocationRecord
from repro.arch.state import ArchState, WORD_MASK
from repro.arch.trace import CommittedOp

__all__ = [
    "ExecutionLimits",
    "ExecutionStatus",
    "FunctionalSimulator",
    "ExecutionResult",
    "InvocationRecord",
    "ArchState",
    "WORD_MASK",
    "CommittedOp",
]
