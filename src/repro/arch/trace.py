"""Committed-trace record types.

A trace is a list of :class:`CommittedOp`, one per architecturally committed
instruction (predicated-false instructions commit too — they occupy pipeline
resources and are one of the paper's false-DUE categories — but have no
architectural effect).

``CommittedOp`` uses ``__slots__`` because traces run to hundreds of
thousands of entries per experiment.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.isa.instruction import Instruction


class CommittedOp:
    """One committed dynamic instruction."""

    __slots__ = (
        "seq",
        "pc",
        "instruction",
        "executed",
        "dest_gpr",
        "dest_pred",
        "src_gprs",
        "mem_addr",
        "is_store",
        "is_load",
        "branch_taken",
        "next_pc",
        "invocation",
        "is_output",
    )

    def __init__(
        self,
        seq: int,
        pc: int,
        instruction: Instruction,
        executed: bool,
        dest_gpr: int = 0,
        dest_pred: int = -1,
        src_gprs: Tuple[int, ...] = (),
        mem_addr: Optional[int] = None,
        is_store: bool = False,
        is_load: bool = False,
        branch_taken: bool = False,
        next_pc: int = 0,
        invocation: int = 0,
        is_output: bool = False,
    ) -> None:
        self.seq = seq
        self.pc = pc
        self.instruction = instruction
        #: False when the qualifying predicate was false (nullified).
        self.executed = executed
        #: GPR written (0 = none; r0 writes are discarded and recorded as 0).
        self.dest_gpr = dest_gpr
        #: Predicate register written (-1 = none).
        self.dest_pred = dest_pred
        self.src_gprs = src_gprs
        self.mem_addr = mem_addr
        self.is_store = is_store
        self.is_load = is_load
        self.branch_taken = branch_taken
        self.next_pc = next_pc
        #: Function-invocation id (0 = main), for return-scoped deadness.
        self.invocation = invocation
        #: True for OUT instructions: the value becomes program output.
        self.is_output = is_output

    @property
    def predicated_false(self) -> bool:
        """Committed but nullified by a false qualifying predicate."""
        return not self.executed

    def __repr__(self) -> str:
        return f"CommittedOp(seq={self.seq}, pc={self.pc}, {self.instruction})"
