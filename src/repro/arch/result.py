"""Execution results: trace, outputs, invocation records, termination status."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, unique
from typing import Dict, List, Optional, Tuple

from repro.arch.trace import CommittedOp


@unique
class ExecutionStatus(Enum):
    """How a functional execution ended."""

    HALTED = "halted"  # clean HALT
    TRAP_ILLEGAL = "trap_illegal"  # executed an illegal opcode
    RET_UNDERFLOW = "ret_underflow"  # RET with empty call stack
    LIMIT = "limit"  # dynamic instruction budget exhausted (hang)


@dataclass
class InvocationRecord:
    """One dynamic activation of a function (id 0 = main)."""

    invocation: int
    entry_pc: int
    call_seq: int
    #: Commit seq of the matching RET; None when the program ended inside.
    return_seq: Optional[int] = None

    @property
    def returned(self) -> bool:
        return self.return_seq is not None


@dataclass
class ExecutionResult:
    """Everything a downstream consumer needs from a functional run."""

    status: ExecutionStatus
    trace: List[CommittedOp]
    outputs: Tuple[int, ...]
    invocations: Dict[int, InvocationRecord] = field(default_factory=dict)

    @property
    def instruction_count(self) -> int:
        return len(self.trace)

    @property
    def clean(self) -> bool:
        return self.status is ExecutionStatus.HALTED

    def output_signature(self) -> Tuple[object, ...]:
        """Comparable summary of observable behaviour.

        Two executions are architecturally equivalent (no silent data
        corruption) exactly when their signatures match: same output values
        in the same order, and the same termination condition.
        """
        return (self.status, self.outputs)
