"""The functional simulator: executes a program and records its trace.

The executor is deliberately strict about abnormal conditions because fault
injection routinely produces them: illegal opcodes trap, returns with an
empty call stack trap, jumps outside the code segment trap, and runaway
executions are cut off by an instruction budget (and classified as hangs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.arch.result import ExecutionResult, ExecutionStatus, InvocationRecord
from repro.arch.state import WORD_MASK, ArchState
from repro.arch.trace import CommittedOp
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import Program

_SIGN_BIT = 1 << 63


def _signed(value: int) -> int:
    """Interpret a 64-bit pattern as two's-complement."""
    return value - (1 << 64) if value & _SIGN_BIT else value


@dataclass(frozen=True)
class ExecutionLimits:
    """Budget for one functional run.

    ``max_instructions`` bounds corrupted executions that loop forever;
    exceeding it yields :data:`ExecutionStatus.LIMIT`, which the fault
    layer classifies as a hang (a detected failure, not SDC).
    """

    max_instructions: int = 2_000_000

    def __post_init__(self) -> None:
        if self.max_instructions <= 0:
            raise ValueError("max_instructions must be positive")


class FunctionalSimulator:
    """Executes REPRO-64 programs architecturally.

    Parameters
    ----------
    program:
        The program to execute.
    limits:
        Execution budget; defaults are generous for normal runs.
    """

    def __init__(
        self, program: Program, limits: Optional[ExecutionLimits] = None
    ) -> None:
        self.program = program
        self.limits = limits or ExecutionLimits()

    def run(
        self,
        record_trace: bool = True,
        override_seq: Optional[int] = None,
        override_instruction: Optional[Instruction] = None,
    ) -> ExecutionResult:
        """Execute the program to completion.

        ``override_seq``/``override_instruction`` substitute one dynamic
        instruction (by commit sequence number) with a different — typically
        bit-flipped — instruction. This is how the fault injector re-executes
        a program "as if" the in-flight copy of instruction *n* had been
        struck: execution is deterministic up to that point, so the commit
        sequence numbers of the baseline and the corrupted run line up.
        """
        if (override_seq is None) != (override_instruction is None):
            raise ValueError("override_seq and override_instruction go together")

        program = self.program
        state = ArchState()
        trace = [] if record_trace else None
        outputs = []
        invocations = {0: InvocationRecord(invocation=0, entry_pc=program.entry,
                                           call_seq=-1)}
        invocation_stack = [0]
        next_invocation = 1

        pc = program.entry
        seq = 0
        status = ExecutionStatus.LIMIT
        max_instructions = self.limits.max_instructions

        while seq < max_instructions:
            if not program.in_range(pc):
                status = ExecutionStatus.TRAP_ILLEGAL
                break
            instruction = program.fetch(pc)
            if seq == override_seq:
                instruction = override_instruction

            opcode = instruction.opcode
            if opcode is Opcode.ILLEGAL:
                status = ExecutionStatus.TRAP_ILLEGAL
                break
            if opcode is Opcode.HALT:
                status = ExecutionStatus.HALTED
                if trace is not None:
                    trace.append(CommittedOp(
                        seq, pc, instruction, executed=True, next_pc=pc,
                        invocation=invocation_stack[-1]))
                break

            executed = state.read_predicate(instruction.qp)
            current_invocation = invocation_stack[-1]
            next_pc = pc + 1
            dest_gpr = 0
            dest_pred = -1
            src_gprs: tuple = ()
            mem_addr = None
            branch_taken = False
            is_output = False

            if executed:
                if opcode is Opcode.ADD or opcode is Opcode.SUB \
                        or opcode is Opcode.AND or opcode is Opcode.OR \
                        or opcode is Opcode.XOR or opcode is Opcode.SHL \
                        or opcode is Opcode.SHR or opcode is Opcode.MUL:
                    a = state.read_gpr(instruction.r2)
                    b = state.read_gpr(instruction.r3)
                    value = _ALU_OPS[opcode](a, b)
                    state.write_gpr(instruction.r1, value)
                    dest_gpr = instruction.r1
                    src_gprs = instruction.source_gprs()
                elif opcode is Opcode.ADDI:
                    a = state.read_gpr(instruction.r2)
                    state.write_gpr(instruction.r1, a + instruction.imm)
                    dest_gpr = instruction.r1
                    src_gprs = instruction.source_gprs()
                elif opcode is Opcode.ANDI:
                    a = state.read_gpr(instruction.r2)
                    state.write_gpr(instruction.r1, a & (instruction.imm & WORD_MASK))
                    dest_gpr = instruction.r1
                    src_gprs = instruction.source_gprs()
                elif opcode is Opcode.MOVI:
                    state.write_gpr(instruction.r1, instruction.imm & WORD_MASK)
                    dest_gpr = instruction.r1
                elif opcode is Opcode.LD:
                    base = state.read_gpr(instruction.r2)
                    mem_addr = (base + instruction.imm) & WORD_MASK
                    state.write_gpr(instruction.r1, state.load(mem_addr))
                    dest_gpr = instruction.r1
                    src_gprs = instruction.source_gprs()
                elif opcode is Opcode.ST:
                    base = state.read_gpr(instruction.r2)
                    mem_addr = (base + instruction.imm) & WORD_MASK
                    state.store(mem_addr, state.read_gpr(instruction.r1))
                    src_gprs = instruction.source_gprs()
                elif opcode is Opcode.CMP_EQ or opcode is Opcode.CMP_LT \
                        or opcode is Opcode.CMP_NE:
                    a = state.read_gpr(instruction.r2)
                    b = state.read_gpr(instruction.r3)
                    result = _CMP_OPS[opcode](a, b)
                    pred_index = instruction.dest_predicate
                    state.write_predicate(pred_index, result)
                    dest_pred = pred_index
                    src_gprs = instruction.source_gprs()
                elif opcode is Opcode.BR:
                    branch_taken = True
                    next_pc = pc + instruction.imm
                elif opcode is Opcode.CALL:
                    branch_taken = True
                    state.call_stack.append(pc + 1)
                    next_pc = pc + instruction.imm
                    invocations[next_invocation] = InvocationRecord(
                        invocation=next_invocation, entry_pc=next_pc, call_seq=seq)
                    invocation_stack.append(next_invocation)
                    next_invocation += 1
                elif opcode is Opcode.RET:
                    if not state.call_stack:
                        status = ExecutionStatus.RET_UNDERFLOW
                        break
                    branch_taken = True
                    next_pc = state.call_stack.pop()
                    finished = invocation_stack.pop()
                    invocations[finished].return_seq = seq
                elif opcode is Opcode.OUT:
                    outputs.append(state.read_gpr(instruction.r2))
                    src_gprs = instruction.source_gprs()
                    is_output = True
                # NOP / PREFETCH / HINT: architecturally invisible.

            if trace is not None:
                trace.append(CommittedOp(
                    seq=seq,
                    pc=pc,
                    instruction=instruction,
                    executed=executed,
                    dest_gpr=dest_gpr,
                    dest_pred=dest_pred,
                    src_gprs=src_gprs,
                    mem_addr=mem_addr,
                    is_store=executed and opcode is Opcode.ST,
                    is_load=executed and opcode is Opcode.LD,
                    branch_taken=branch_taken,
                    next_pc=next_pc,
                    invocation=current_invocation,
                    is_output=is_output,
                ))

            pc = next_pc
            seq += 1

        return ExecutionResult(
            status=status,
            trace=trace if trace is not None else [],
            outputs=tuple(outputs),
            invocations=invocations,
        )


def _shift_left(a: int, b: int) -> int:
    return (a << (b % 64)) & WORD_MASK


def _shift_right(a: int, b: int) -> int:
    return a >> (b % 64)


_ALU_OPS = {
    Opcode.ADD: lambda a, b: (a + b) & WORD_MASK,
    Opcode.SUB: lambda a, b: (a - b) & WORD_MASK,
    Opcode.AND: lambda a, b: a & b,
    Opcode.OR: lambda a, b: a | b,
    Opcode.XOR: lambda a, b: a ^ b,
    Opcode.SHL: _shift_left,
    Opcode.SHR: _shift_right,
    Opcode.MUL: lambda a, b: (a * b) & WORD_MASK,
}

_CMP_OPS = {
    Opcode.CMP_EQ: lambda a, b: a == b,
    Opcode.CMP_NE: lambda a, b: a != b,
    Opcode.CMP_LT: lambda a, b: _signed(a) < _signed(b),
}
