"""Architectural state: registers, predicates, sparse memory, call stack."""

from __future__ import annotations

from typing import Dict, List

from repro.isa.registers import GPR_ZERO, NUM_GPRS, NUM_PREDICATES, PRED_TRUE

#: All architectural integer values are 64-bit.
WORD_MASK = (1 << 64) - 1

#: Data addresses are confined to a 48-bit space, like a real virtual
#: address width; corrupted address arithmetic wraps instead of exploding
#: the sparse memory dictionary.
ADDRESS_MASK = (1 << 48) - 1


class ArchState:
    """Mutable architectural state for one program execution."""

    def __init__(self) -> None:
        self.gprs: List[int] = [0] * NUM_GPRS
        self.predicates: List[bool] = [False] * NUM_PREDICATES
        self.predicates[PRED_TRUE] = True
        self.memory: Dict[int, int] = {}
        self.call_stack: List[int] = []

    def read_gpr(self, index: int) -> int:
        if index == GPR_ZERO:
            return 0
        return self.gprs[index]

    def write_gpr(self, index: int, value: int) -> None:
        if index == GPR_ZERO:
            return  # r0 is hardwired to zero
        self.gprs[index] = value & WORD_MASK

    def read_predicate(self, index: int) -> bool:
        if index == PRED_TRUE:
            return True
        return self.predicates[index]

    def write_predicate(self, index: int, value: bool) -> None:
        if index == PRED_TRUE:
            return  # p0 is hardwired to true
        self.predicates[index] = value

    def load(self, address: int) -> int:
        """Word load; unmapped addresses read as zero."""
        return self.memory.get(address & ADDRESS_MASK, 0)

    def store(self, address: int, value: int) -> None:
        self.memory[address & ADDRESS_MASK] = value & WORD_MASK
