"""Three-level cache hierarchy with the paper's latencies.

Every access reports *which levels missed*, because the squash technique
triggers on "load missed in L0" or "load missed in L1", independent of the
final hit level.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memory.cache import Cache, CacheConfig

#: 64-byte lines expressed in 8-byte words.
LINE_WORDS = 8


@dataclass(frozen=True)
class HierarchyConfig:
    """Cache geometry and latencies.

    Latencies are the paper's (2 / 10 / 25 cycles, Section 5). Capacities
    are scaled down ~32x from the paper's 8 KB / 256 KB / 10 MB because our
    traces are ~10^3x shorter than the paper's 100M-instruction SimPoints:
    keeping the paper's absolute capacities would make every workload
    footprint cache-resident and eliminate the load misses the squash
    technique triggers on. What AVF behaviour depends on is the miss *rate*
    per level and the miss *latency*, both of which the scaled hierarchy
    preserves (see DESIGN.md).
    """

    l0: CacheConfig = field(default_factory=lambda: CacheConfig(
        size_words=256, line_words=LINE_WORDS, ways=4, name="L0"))  # 2 KB
    l1: CacheConfig = field(default_factory=lambda: CacheConfig(
        size_words=2048, line_words=LINE_WORDS, ways=8, name="L1"))  # 16 KB
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(
        size_words=64 * 1024, line_words=LINE_WORDS, ways=8, name="L2"))  # 512 KB
    l0_latency: int = 2
    l1_latency: int = 10
    l2_latency: int = 25
    memory_latency: int = 200


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one memory reference."""

    latency: int
    l0_miss: bool
    l1_miss: bool
    l2_miss: bool

    @property
    def hit_level(self) -> str:
        if not self.l0_miss:
            return "L0"
        if not self.l1_miss:
            return "L1"
        if not self.l2_miss:
            return "L2"
        return "MEM"


class CacheHierarchy:
    """Inclusive three-level hierarchy; misses fill all levels above."""

    def __init__(self, config: HierarchyConfig = HierarchyConfig()) -> None:
        self.config = config
        self.l0 = Cache(config.l0)
        self.l1 = Cache(config.l1)
        self.l2 = Cache(config.l2)

    def access(self, address: int) -> AccessResult:
        """Reference ``address`` (load, store, or prefetch) and time it."""
        cfg = self.config
        if self.l0.access(address):
            return AccessResult(cfg.l0_latency, False, False, False)
        if self.l1.access(address):
            return AccessResult(cfg.l1_latency, True, False, False)
        if self.l2.access(address):
            return AccessResult(cfg.l2_latency, True, True, False)
        return AccessResult(cfg.memory_latency, True, True, True)

    def snapshot(self) -> tuple:
        """Copy of all three levels' replacement state."""
        return (self.l0.snapshot(), self.l1.snapshot(), self.l2.snapshot())

    def restore(self, state: tuple) -> None:
        """Overwrite all three levels from a :meth:`snapshot` copy."""
        l0, l1, l2 = state
        self.l0.restore(l0)
        self.l1.restore(l1)
        self.l2.restore(l2)

    def reset_stats(self) -> None:
        self.l0.reset_stats()
        self.l1.reset_stats()
        self.l2.reset_stats()
