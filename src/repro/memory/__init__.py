"""Cache hierarchy substrate.

The paper's machine has three cache levels (8 KB L0 / 256 KB L1 / 10 MB L2
at 2 / 10 / 25 cycles). Load misses in L0 or L1 are the *triggers* for the
exposure-reduction squash, so the hierarchy reports which levels missed for
every access, not just a latency.
"""

from repro.memory.cache import Cache, CacheConfig
from repro.memory.hierarchy import AccessResult, CacheHierarchy, HierarchyConfig

__all__ = [
    "Cache",
    "CacheConfig",
    "AccessResult",
    "CacheHierarchy",
    "HierarchyConfig",
]
