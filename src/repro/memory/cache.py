"""A set-associative cache with true-LRU replacement.

Addresses are word-granular (the ISA is word-addressed); line and capacity
sizes are expressed in words. The model tracks tags only — data values live
in the functional simulator — because timing and miss triggers are all the
pipeline needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level."""

    size_words: int
    line_words: int
    ways: int
    name: str = "cache"

    def __post_init__(self) -> None:
        if self.size_words <= 0 or self.line_words <= 0 or self.ways <= 0:
            raise ValueError("cache geometry values must be positive")
        if self.size_words % (self.line_words * self.ways) != 0:
            raise ValueError(
                f"{self.name}: size {self.size_words} not divisible by "
                f"line*ways ({self.line_words}*{self.ways})"
            )
        if self.line_words & (self.line_words - 1):
            raise ValueError(f"{self.name}: line size must be a power of two")
        sets = self.size_words // (self.line_words * self.ways)
        if sets & (sets - 1):
            raise ValueError(f"{self.name}: set count must be a power of two")

    @property
    def num_sets(self) -> int:
        return self.size_words // (self.line_words * self.ways)


class Cache:
    """One cache level. ``access`` returns True on hit and fills on miss."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self._set_mask = config.num_sets - 1
        self._line_shift = config.line_words.bit_length() - 1
        # Per-set list of tags, most recently used last.
        self._sets: List[List[int]] = [[] for _ in range(config.num_sets)]
        self.hits = 0
        self.misses = 0

    def _locate(self, address: int) -> tuple:
        line = address >> self._line_shift
        return self._sets[line & self._set_mask], line

    def probe(self, address: int) -> bool:
        """Check residency without updating replacement state or stats."""
        tags, line = self._locate(address)
        return line in tags

    def access(self, address: int) -> bool:
        """Reference ``address``: update LRU, fill on miss, return hit?"""
        tags, line = self._locate(address)
        if line in tags:
            tags.remove(line)
            tags.append(line)
            self.hits += 1
            return True
        self.misses += 1
        tags.append(line)
        if len(tags) > self.config.ways:
            tags.pop(0)  # evict LRU
        return False

    def snapshot(self) -> List[List[int]]:
        """Copy of the replacement state (tags per set, LRU order)."""
        return [list(tags) for tags in self._sets]

    def restore(self, state: List[List[int]]) -> None:
        """Overwrite the replacement state with a :meth:`snapshot` copy."""
        if len(state) != len(self._sets):
            raise ValueError(
                f"{self.config.name}: snapshot has {len(state)} sets, "
                f"cache has {len(self._sets)}")
        self._sets = [list(tags) for tags in state]

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
