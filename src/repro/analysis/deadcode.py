"""Dynamic dead-code analysis (paper Section 4.1).

Classifies every committed instruction by whether a fault in its IQ entry
could have reached the program's observable output:

* **LIVE** — the instruction's effect reaches an ``OUT`` (I/O), or it is a
  control instruction. (Like the paper, we conservatively treat all control
  decisions as mattering: Y-branch effects are grouped under true DUE.)
* **NEUTRAL** — no-ops, prefetches, branch hints: by construction they can
  never affect architectural state.
* **PRED_FALSE** — committed but nullified by a false qualifying predicate.
* **FDD_REG / FDD_REG_RETURN** — wrote a register that no instruction read
  before it was overwritten (or before the program ended). The ``_RETURN``
  variant died because its function returned first — the paper's
  "FDD via procedure return" category of Figure 3.
* **TDD_REG** — its register result was read, but only by dynamically dead
  instructions (transitively dead via registers).
* **FDD_MEM / TDD_MEM** — same two notions for store values in memory.

The analysis is a forward def-use-chain construction followed by a backward
liveness sweep; it discovers deadness from real dataflow, independent of
how the workload generator arranged the code.
"""

from __future__ import annotations

from enum import Enum, unique
from typing import Dict, List, Optional

from repro.arch.result import ExecutionResult
from repro.isa.opcodes import InstrClass


@unique
class DynClass(Enum):
    """ACE classification of one committed dynamic instruction."""

    LIVE = "live"
    NEUTRAL = "neutral"
    PRED_FALSE = "pred_false"
    FDD_REG = "fdd_reg"
    FDD_REG_RETURN = "fdd_reg_return"
    TDD_REG = "tdd_reg"
    FDD_MEM = "fdd_mem"
    TDD_MEM = "tdd_mem"


#: Classes the paper calls "dynamically dead".
DEAD_CLASSES = frozenset({
    DynClass.FDD_REG, DynClass.FDD_REG_RETURN, DynClass.TDD_REG,
    DynClass.FDD_MEM, DynClass.TDD_MEM,
})

_CONTROL_CLASSES = frozenset({
    InstrClass.BRANCH, InstrClass.CALL, InstrClass.RET, InstrClass.HALT,
})


class DeadnessAnalysis:
    """Per-instruction classification plus dead-value overwrite distances."""

    def __init__(
        self,
        classes: List[DynClass],
        overwrite_distance: Dict[int, Optional[int]],
    ) -> None:
        #: ``classes[seq]`` is the classification of trace entry ``seq``.
        self.classes = classes
        #: For dead register/memory writers: commits until the overwrite
        #: (None when the value was still unread at program end).
        self.overwrite_distance = overwrite_distance

    def class_of(self, seq: int) -> DynClass:
        return self.classes[seq]

    def count(self, cls: DynClass) -> int:
        return sum(1 for c in self.classes if c is cls)

    def dead_fraction(self) -> float:
        """Fraction of committed instructions that are dynamically dead."""
        if not self.classes:
            return 0.0
        dead = sum(1 for c in self.classes if c in DEAD_CLASSES)
        return dead / len(self.classes)

    def summary(self) -> Dict[str, float]:
        total = max(1, len(self.classes))
        return {cls.value: self.count(cls) / total for cls in DynClass}


def analyze_deadness(result: ExecutionResult) -> DeadnessAnalysis:
    """Run the liveness analysis over one functional execution."""
    trace = result.trace
    n = len(trace)

    # Forward pass: def-use chains for registers, predicates, and memory.
    readers: List[List[int]] = [[] for _ in range(n)]
    overwrite_seq: List[Optional[int]] = [None] * n
    #: Producers whose predicate was consumed as a qualifying predicate.
    #: A qp read is a nullification decision: flipping the predicate makes
    #: a nullified instruction execute (or vice versa), so the producing
    #: compare is ACE no matter what the consumer itself does.
    predicate_consumed = [False] * n
    reg_writer: Dict[int, int] = {}
    pred_writer: Dict[int, int] = {}
    mem_writer: Dict[int, int] = {}

    for op in trace:
        seq = op.seq
        instruction = op.instruction
        # Reads: qualifying predicate (read even when false — the value
        # decides nullification), register sources, memory loads. Neutral
        # instructions contribute no liveness edges: their "reads" are
        # architecturally inconsequential.
        if not instruction.is_neutral:
            if instruction.qp != 0 and instruction.qp in pred_writer:
                readers[pred_writer[instruction.qp]].append(seq)
                predicate_consumed[pred_writer[instruction.qp]] = True
            for reg in op.src_gprs:
                writer = reg_writer.get(reg)
                if writer is not None:
                    readers[writer].append(seq)
            if op.is_load and op.mem_addr is not None:
                writer = mem_writer.get(op.mem_addr)
                if writer is not None:
                    readers[writer].append(seq)
        # Writes (predicated-false instructions write nothing).
        if op.executed:
            if op.dest_gpr:
                prior = reg_writer.get(op.dest_gpr)
                if prior is not None:
                    overwrite_seq[prior] = seq
                reg_writer[op.dest_gpr] = seq
            if op.dest_pred >= 0:
                prior = pred_writer.get(op.dest_pred)
                if prior is not None:
                    overwrite_seq[prior] = seq
                pred_writer[op.dest_pred] = seq
            if op.is_store and op.mem_addr is not None:
                prior = mem_writer.get(op.mem_addr)
                if prior is not None:
                    overwrite_seq[prior] = seq
                mem_writer[op.mem_addr] = seq

    # Backward pass: liveness, plus whether a (dead) value's consumer chain
    # passes through memory. The latter decides the paper's "tracked via
    # register" vs "tracked via memory" split: a register write whose dead
    # chain ends in a store can only be proven false once π bits extend to
    # the memory system (Section 4.3.3 option 4), so it must be classified
    # as memory-tracked even though the instruction itself wrote a register.
    live = [False] * n
    reaches_memory = [False] * n
    for seq in range(n - 1, -1, -1):
        op = trace[seq]
        reaches_memory[seq] = op.is_store or any(
            reaches_memory[r] for r in readers[seq])
        if op.is_output:
            live[seq] = True
            continue
        if op.executed and op.instruction.instr_class in _CONTROL_CLASSES:
            live[seq] = True
            continue
        if predicate_consumed[seq]:
            live[seq] = True
            continue
        live[seq] = any(live[r] for r in readers[seq])

    # Classification.
    invocations = result.invocations
    classes: List[DynClass] = [DynClass.LIVE] * n
    distances: Dict[int, Optional[int]] = {}

    for op in trace:
        seq = op.seq
        instruction = op.instruction
        if instruction.is_neutral:
            classes[seq] = DynClass.NEUTRAL
            continue
        if op.predicated_false:
            classes[seq] = DynClass.PRED_FALSE
            continue
        if live[seq]:
            classes[seq] = DynClass.LIVE
            continue
        # Dead: split by what it wrote and whether anything read it.
        was_read = bool(readers[seq])
        over = overwrite_seq[seq]
        if op.is_store:
            classes[seq] = DynClass.TDD_MEM if was_read else DynClass.FDD_MEM
            distances[seq] = None if over is None else over - seq
        elif op.dest_gpr or op.dest_pred >= 0:
            if was_read:
                classes[seq] = (DynClass.TDD_MEM if reaches_memory[seq]
                                else DynClass.TDD_REG)
            else:
                writer_invocation = invocations.get(op.invocation)
                returned_first = (
                    writer_invocation is not None
                    and writer_invocation.returned
                    and (over is None
                         or writer_invocation.return_seq < over)
                )
                if returned_first and op.invocation != 0:
                    classes[seq] = DynClass.FDD_REG_RETURN
                else:
                    classes[seq] = DynClass.FDD_REG
            distances[seq] = None if over is None else over - seq
        else:
            # Executed, wrote nothing (e.g. a store nullified elsewhere or a
            # write to r0), and nothing read it: first-level dead.
            classes[seq] = DynClass.FDD_REG
            distances[seq] = None

    return DeadnessAnalysis(classes=classes, overwrite_distance=distances)
