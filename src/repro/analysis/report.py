"""Single-benchmark deep-dive report.

Combines every analysis the library offers for one benchmark into a
plain-text dossier: instruction mix, timing, cache behaviour, the IQ's
residency decomposition and AVFs, the tracking ladder, the register-file
AVF, and (optionally) a fault-injection cross-check.
"""

from __future__ import annotations

from collections import Counter
from typing import Optional

from repro.analysis.deadcode import DynClass
from repro.analysis.regfile import compute_regfile_avf
from repro.due.tracking import TRACKING_LADDER, due_avf_with_tracking
from repro.experiments.common import BenchmarkRun
from repro.faults.campaign import CampaignConfig, run_campaign
from repro.isa.opcodes import InstrClass
from repro.util.tables import format_table


def _mix_section(run: BenchmarkRun) -> str:
    counts = Counter(op.instruction.instr_class for op in
                     run.execution.trace)
    total = max(1, len(run.execution.trace))
    rows = [[klass.value, f"{counts[klass] / total:.1%}"]
            for klass in InstrClass if counts[klass]]
    return format_table(["class", "share"], rows,
                        title="dynamic instruction mix")


def _deadness_section(run: BenchmarkRun) -> str:
    summary = run.deadness.summary()
    rows = [[cls.value, f"{summary[cls.value]:.1%}"]
            for cls in DynClass if summary[cls.value] > 0]
    return format_table(["ACE class", "share of commits"], rows,
                        title="dead-code analysis")


def _timing_section(run: BenchmarkRun) -> str:
    stats = run.pipeline.stats
    loads = max(1, stats.get("loads", 0))
    lines = [
        "timing",
        f"  cycles            {run.pipeline.cycles}",
        f"  IPC               {run.pipeline.ipc:.3f}",
        f"  L0 miss rate      {stats.get('l0_misses', 0) / loads:.1%} of loads",
        f"  L1 miss rate      {stats.get('l1_misses', 0) / loads:.1%} of loads",
        f"  branch mispredict "
        f"{stats.get('branch_mispredictions', 0):.0f} / "
        f"{stats.get('branch_predictions', 0):.0f}",
        f"  wrong-path fetched {stats.get('wrong_path_fetched', 0):.0f}",
        f"  squash events     {stats.get('squash_events', 0):.0f}",
    ]
    return "\n".join(lines)


def _avf_section(run: BenchmarkRun) -> str:
    report = run.report
    residency = report.residency_summary()
    lines = [
        "instruction-queue AVF",
        f"  idle {residency['idle']:.1%} | ACE {residency['ace']:.1%} | "
        f"valid un-ACE {residency['valid_unace']:.1%} | "
        f"Ex-ACE {residency['ex_ace']:.1%}",
        f"  SDC AVF (unprotected)  {report.sdc_avf:.1%}",
        f"  DUE AVF (parity)       {report.due_avf:.1%}",
    ]
    for level in TRACKING_LADDER:
        due = due_avf_with_tracking(report.breakdown, level)
        lines.append(f"    with {level.name:12s} {due:.1%}")
    return "\n".join(lines)


def _regfile_section(run: BenchmarkRun) -> str:
    avf = compute_regfile_avf(run.pipeline, run.execution.trace,
                              run.deadness)
    return (
        "register-file AVF\n"
        f"  SDC AVF {avf.sdc_avf:.1%} | parity DUE "
        f"{avf.due_avf_with_parity:.1%} | with register pi "
        f"{avf.due_avf_with_register_pi:.1%}"
    )


def _injection_section(run: BenchmarkRun, trials: int, seed: int) -> str:
    campaign = run_campaign(run.program, run.execution, run.pipeline,
                            CampaignConfig(trials=trials, seed=seed))
    return (
        "fault-injection cross-check (unprotected)\n"
        f"  injected SDC AVF {campaign.sdc_avf_estimate:.1%} "
        f"(+-{campaign.rate_confidence():.1%}, {trials} strikes) vs "
        f"analytical {run.report.sdc_avf:.1%} (conservative)"
    )


def benchmark_report(
    run: BenchmarkRun,
    injection_trials: Optional[int] = None,
    seed: int = 2004,
) -> str:
    """Assemble the full dossier for one :class:`BenchmarkRun`."""
    profile = run.profile
    sections = [
        f"=== {profile.name} ({profile.suite}; paper skip "
        f"{profile.skip_millions:,} M instructions)",
        f"{run.pipeline.committed} committed instructions, "
        f"{len(run.program)} static",
        _mix_section(run),
        _deadness_section(run),
        _timing_section(run),
        _avf_section(run),
        _regfile_section(run),
    ]
    if injection_trials:
        sections.append(_injection_section(run, injection_trials, seed))
    return "\n\n".join(sections)
