"""Register-file AVF analysis.

The paper's conclusion: "Once these mechanisms are in place, they can also
reduce the AVF of other structures, such as the register file." This module
provides that analysis for REPRO-64's 128-entry general register file.

A register's bits are ACE from the cycle a *live* value is written into it
until that value's last read; values produced by dynamically dead
instructions (and the tails after a value's final read) are un-ACE. With
π bits on the register file (TrackingLevel.REG_PI and above), the dead
share of the un-ACE residency stops contributing false DUE.

Timing comes from the pipeline's committed occupancy intervals: a value is
produced when its writer issues and consumed when its readers issue.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.deadcode import DEAD_CLASSES, DeadnessAnalysis, DynClass
from repro.arch.trace import CommittedOp
from repro.isa.registers import NUM_GPRS
from repro.pipeline.iq import OccupantKind
from repro.pipeline.result import PipelineResult


@dataclass
class RegisterFileAvf:
    """Residency decomposition of the register file."""

    cycles: int
    registers: int = NUM_GPRS
    ace_reg_cycles: float = 0.0
    #: Residency of values that are dynamically dead (un-ACE, and the
    #: share register-file π bits can stop signalling).
    dead_reg_cycles: float = 0.0
    #: Post-last-read residency of live values (the RF's Ex-ACE analogue).
    stale_reg_cycles: float = 0.0

    @property
    def total_reg_cycles(self) -> float:
        return float(self.registers) * self.cycles

    @property
    def sdc_avf(self) -> float:
        if self.total_reg_cycles == 0:
            return 0.0
        return self.ace_reg_cycles / self.total_reg_cycles

    @property
    def dead_fraction(self) -> float:
        if self.total_reg_cycles == 0:
            return 0.0
        return self.dead_reg_cycles / self.total_reg_cycles

    @property
    def due_avf_with_parity(self) -> float:
        """Parity on the RF: true DUE (ACE) plus false DUE (dead values).

        Stale (post-last-read) residency is never read again, so it cannot
        trigger the parity check — same argument as the IQ's Ex-ACE time.
        """
        if self.total_reg_cycles == 0:
            return 0.0
        return (self.ace_reg_cycles + self.dead_reg_cycles) \
            / self.total_reg_cycles

    @property
    def due_avf_with_register_pi(self) -> float:
        """π bits on the registers remove the dead-value false DUE."""
        return self.sdc_avf


def compute_regfile_avf(
    result: PipelineResult,
    trace: List[CommittedOp],
    deadness: DeadnessAnalysis,
) -> RegisterFileAvf:
    """Integrate register-value lifetimes over one timing run.

    Values are tracked at register granularity: a write opens a lifetime at
    the writer's issue cycle; reads extend the value's last-use point; the
    next write of the same register (or the end of simulation) closes it.
    """
    issue_cycle: Dict[int, int] = {}
    for interval in result.intervals:
        if interval.kind is OccupantKind.COMMITTED and interval.issued:
            issue_cycle[interval.seq] = interval.issue_cycle

    avf = RegisterFileAvf(cycles=result.cycles)

    # Open value per register: (written_cycle, last_read_cycle, dead?).
    open_values: Dict[int, List] = {}

    def close(reg: int, end_cycle: int) -> None:
        entry = open_values.pop(reg, None)
        if entry is None:
            return
        written, last_read, dead = entry
        last_read = max(last_read, written)
        end_cycle = max(end_cycle, last_read)
        if dead:
            avf.dead_reg_cycles += end_cycle - written
        else:
            avf.ace_reg_cycles += last_read - written
            avf.stale_reg_cycles += end_cycle - last_read

    for op in trace:
        when = issue_cycle.get(op.seq)
        if when is None:
            continue
        for reg in op.src_gprs:
            if reg in open_values:
                entry = open_values[reg]
                entry[1] = max(entry[1], when)
        if op.executed and op.dest_gpr:
            close(op.dest_gpr, when)
            dead = deadness.class_of(op.seq) in DEAD_CLASSES
            open_values[op.dest_gpr] = [when, when, dead]

    for reg in list(open_values):
        close(reg, result.cycles)
    return avf
