"""Post-commit analyses over the dynamic trace.

The centrepiece is the dynamic dead-code analysis (`deadcode`): a backward
liveness pass over the committed trace that classifies every dynamic
instruction as live (ACE), neutral, predicated-false, or dynamically dead —
first-level vs transitive, tracked via registers vs memory, and (for the
paper's Figure 3) first-level-dead *because of a procedure return*.
"""

from repro.analysis.deadcode import (
    DeadnessAnalysis,
    DynClass,
    analyze_deadness,
)

__all__ = ["DeadnessAnalysis", "DynClass", "analyze_deadness"]
